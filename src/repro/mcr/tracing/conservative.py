"""Conservative tracing: likely-pointer scanning of opaque memory.

"MCR operates similarly to a conservative garbage collector, scanning
opaque (i.e., type-ambiguous) memory areas looking for likely pointers —
that is, aligned memory words that point to a valid live object in
memory" (§6).  Two refinements from the paper are implemented:

* when the pointed-to object carries a data-type tag, unaligned candidates
  (with respect to the target's alignment) are rejected;
* interior pointers are accepted and recorded as such (the offset into the
  target is preserved at fixup time).

The scanner never *writes*; it only reports candidate words.  Resolution
of a word to a live object is delegated to the caller's ``resolve``
callable so the same scanner serves heap chunks, region blocks, statics,
and library areas.

Three implementations coexist:

* ``scan_range`` with a prepared ``index`` — the **v2 vectorized path**:
  the whole window is classified at once by a ``repro.mem.scan_backend``
  backend (numpy when installed, a pure-stdlib fallback otherwise);
  Python-level work happens only for the surviving likely pointers.
* ``scan_range``/``scan_words`` without an index — the **bulk fast
  path** (PR 2): one mapping lookup per range (a zero-copy
  ``AddressSpace.view``), all words decoded in a single
  ``memoryview.cast('Q')`` pass, and an optional ``bounds`` min/max
  prefilter that rejects words that cannot resolve without any
  Python-level lookup.  Falls back to the reference scanner whenever the
  range is not backed by one mapping, so fault semantics are unchanged.
* ``scan_range_ref``/``scan_words_ref`` — the **reference per-word
  implementation** (the original hot path).  Kept as the fallback, as the
  legacy mode behind ``MCRConfig.fast_scan``, and as the oracle for the
  equivalence property tests and the ``bench scanperf`` experiment.

Both report identical ``LikelyPointer`` lists and ``words_scanned``
counts by construction, so every Table 2/3 ratio is invariant under the
fast path.
"""

from __future__ import annotations

import struct as _struct
import sys as _sys
from typing import Callable, Iterable, List, Optional, Tuple

from repro import obs
from repro.errors import MemoryFault
from repro.mem.address_space import AddressSpace
from repro.types.descriptors import WORD_SIZE

# ``memoryview.cast("Q")`` decodes in *native* byte order; the simulated
# machine is little-endian.  On big-endian hosts fall back to explicit
# little-endian struct decoding.
_NATIVE_LITTLE_ENDIAN = _sys.byteorder == "little"

ResolveFn = Callable[[int], Optional[Tuple[int, int, Optional[int]]]]
Bounds = Optional[Tuple[int, int]]


class LikelyPointer:
    """One aligned word that resolves to a live object."""

    __slots__ = ("slot_address", "value", "target_base", "interior")

    def __init__(self, slot_address: int, value: int, target_base: int, interior: bool) -> None:
        self.slot_address = slot_address
        self.value = value
        self.target_base = target_base
        self.interior = interior

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "interior" if self.interior else "base"
        return f"<LikelyPointer @0x{self.slot_address:x} -> 0x{self.value:x} ({kind})>"


def _decode_words(window: memoryview) -> List[int]:
    """All little-endian 64-bit words in ``window`` (len must be 8-aligned)."""
    if _NATIVE_LITTLE_ENDIAN:
        return window.cast("Q").tolist()
    return [w for (w,) in _struct.iter_unpack("<Q", window)]  # pragma: no cover


def _publish(words: int, calls: int, from_ref: bool) -> None:
    """Feed scan volume counters to the active collector (one incr per range)."""
    collector = obs.ACTIVE
    if collector is None:
        return
    counters = collector.counters
    counters.incr("scan.words", words)
    counters.incr("scan.resolve_calls", calls)
    if from_ref:
        counters.incr("scan.ranges_ref", 1)
    else:
        counters.incr("scan.ranges_bulk", 1)


def classify_candidates(
    pairs: Iterable[Tuple[int, int]],
    resolve: ResolveFn,
    lo: int,
    hi: int,
) -> Tuple[List[LikelyPointer], int]:
    """Shared likely-pointer classifier (the one bounds prefilter).

    One loop serves every scalar scan kernel — the bulk range sweep, the
    pointer-sized-integer word scan, and (conceptually) the vectorized
    backends, which reimplement exactly this predicate as array
    operations.  ``pairs`` yields ``(slot_address, value)``; a word is a
    candidate iff ``lo <= value < hi`` (callers without bounds pass
    ``(1, 2**64)``, which reproduces the historical nonzero check), and a
    candidate survives iff ``resolve`` places it inside a live object and
    the target's tag alignment (when tagged) accepts it.

    Returns the surviving pointers and the candidate count — the number
    of ``resolve`` calls made, which feeds ``scan.resolve_calls``.
    """
    found: List[LikelyPointer] = []
    append = found.append
    calls = 0
    for slot, value in pairs:
        if value < lo or value >= hi:
            continue
        calls += 1
        resolved = resolve(value)
        if resolved is None:
            continue
        target_base, _target_size, target_align = resolved
        if target_align is not None and (value - target_base) % target_align != 0:
            # Tag-assisted rejection of illegal (unaligned) candidates.
            continue
        append(LikelyPointer(slot, value, target_base, value != target_base))
    return found, calls


def scan_range(
    space: AddressSpace,
    start: int,
    size: int,
    resolve: ResolveFn,
    bounds: Bounds = None,
    index=None,
) -> Tuple[List[LikelyPointer], int]:
    """Scan ``[start, start+size)`` for likely pointers (bulk fast path).

    ``resolve(value)`` returns ``(target_base, target_size, target_align)``
    when ``value`` falls inside a live object (``target_align`` of ``None``
    means no tag — accept any alignment), else ``None``.

    ``bounds`` is an optional ``(lo, hi)`` pair such that ``resolve`` is
    guaranteed to return ``None`` for any value outside ``lo <= v < hi``
    (the caller's interval index knows the min/max resolvable address);
    words outside the window skip resolution entirely.

    ``index`` is an optional ``repro.mem.scan_backend.PreparedScanIndex``
    snapshot of the same interval index: when given, the whole window is
    classified by the vectorized backend and ``resolve`` is bypassed
    entirely (the prepared arrays *are* the resolver).  Output and
    accounting are byte-identical either way.

    Returns the likely pointers found and the number of words scanned
    (cost-model input) — both byte-identical to ``scan_range_ref``.
    """
    # Words must themselves be aligned in memory.
    first = (start + WORD_SIZE - 1) // WORD_SIZE * WORD_SIZE
    end = start + size
    count = (end - first) // WORD_SIZE
    if count <= 0:
        return [], 0
    try:
        window = space.view(first, count * WORD_SIZE)
    except MemoryFault:
        # The range is not backed by a single mapping (crosses a boundary
        # or touches unmapped memory): the reference scanner reproduces
        # the original per-word fault semantics exactly.
        return scan_range_ref(space, start, size, resolve)
    if index is not None:
        positions, values, targets, calls = index.classify(window)
        found = [
            LikelyPointer(first + position * WORD_SIZE, value, target, value != target)
            for position, value, target in zip(positions, values, targets)
        ]
        _publish(count, calls, from_ref=False)
        return found, count
    words = _decode_words(window)
    lo, hi = bounds if bounds is not None else (1, 1 << 64)
    found, calls = classify_candidates(
        ((first + position * WORD_SIZE, value) for position, value in enumerate(words)),
        resolve,
        lo,
        hi,
    )
    _publish(count, calls, from_ref=False)
    return found, count


def scan_range_ref(
    space: AddressSpace,
    start: int,
    size: int,
    resolve: ResolveFn,
) -> Tuple[List[LikelyPointer], int]:
    """Reference per-word scanner: one mapping lookup + copy per word."""
    found: List[LikelyPointer] = []
    first = (start + WORD_SIZE - 1) // WORD_SIZE * WORD_SIZE
    end = start + size
    words_scanned = 0
    calls = 0
    cursor = first
    while cursor + WORD_SIZE <= end:
        value = space.read_word(cursor)
        words_scanned += 1
        cursor += WORD_SIZE
        if value == 0:
            continue
        calls += 1
        resolved = resolve(value)
        if resolved is None:
            continue
        target_base, _target_size, target_align = resolved
        if target_align is not None and (value - target_base) % target_align != 0:
            continue
        found.append(
            LikelyPointer(cursor - WORD_SIZE, value, target_base, value != target_base)
        )
    _publish(words_scanned, calls, from_ref=True)
    return found, words_scanned


def scan_words(
    space: AddressSpace,
    offsets: Iterable[int],
    base: int,
    resolve: ResolveFn,
    bounds: Bounds = None,
) -> Tuple[List[LikelyPointer], int]:
    """Scan specific word offsets (the pointer-sized-integer policy).

    Bulk variant: the containing mapping is looked up once and words are
    decoded in place with ``struct.unpack_from``; slots outside it fall
    back to ``read_word`` so fault semantics match the reference scanner.
    Classification is the shared ``classify_candidates`` predicate (the
    zero-word skip folds into the bounds window: zero never resolves).
    """
    mapping = space.mapping_at(base)
    data = mapping.data if mapping is not None else None
    unpack_from = _struct.unpack_from
    pairs: List[Tuple[int, int]] = []
    for offset in offsets:
        slot = base + offset
        if data is not None and mapping.base <= slot and slot + WORD_SIZE <= mapping.end:
            value = unpack_from("<Q", data, slot - mapping.base)[0]
        else:
            value = space.read_word(slot)
        pairs.append((slot, value))
    lo, hi = bounds if bounds is not None else (1, 1 << 64)
    found, calls = classify_candidates(pairs, resolve, max(lo, 1), hi)
    _publish(len(pairs), calls, from_ref=False)
    return found, len(pairs)


def scan_words_ref(
    space: AddressSpace,
    offsets: Iterable[int],
    base: int,
    resolve: ResolveFn,
) -> Tuple[List[LikelyPointer], int]:
    """Reference per-word offset scanner (the original implementation)."""
    found: List[LikelyPointer] = []
    words_scanned = 0
    calls = 0
    for offset in offsets:
        slot = base + offset
        value = space.read_word(slot)
        words_scanned += 1
        if value == 0:
            continue
        calls += 1
        resolved = resolve(value)
        if resolved is None:
            continue
        target_base, _target_size, target_align = resolved
        if target_align is not None and (value - target_base) % target_align != 0:
            continue
        found.append(LikelyPointer(slot, value, target_base, value != target_base))
    _publish(words_scanned, calls, from_ref=True)
    return found, words_scanned
