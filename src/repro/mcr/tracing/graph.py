"""Object records, address resolution, and the hybrid walk driver.

``GraphBuilder`` reconstructs the old version's reachable program state:
starting from root objects (global variables, plus the stack variables of
threads parked at quiescent points) it traverses *precisely* wherever a
data-type tag provides layout, and hands every opaque byte range — untagged
allocations, unions, char buffers, pointer-sized integers per policy — to
the conservative scanner.  The result is the object graph plus the
precise/likely pointer statistics of the paper's Table 2.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.kernel.process import Process
from repro.mcr.config import MCRConfig
from repro.mcr.tracing import conservative, precise
from repro.mem.tags import DataTag
from repro.types.descriptors import TypeDesc

# Memory regions for Table-2 classification.
REGION_STATIC = "static"
REGION_DYNAMIC = "dynamic"
REGION_LIB = "lib"

_KIND_TO_REGION = {
    "data": REGION_STATIC,
    "stack": REGION_STATIC,
    "heap": REGION_DYNAMIC,
    "mmap": REGION_DYNAMIC,
    "lib": REGION_LIB,
}


class ObjectRecord:
    """One state object discovered in the old version."""

    __slots__ = (
        "base",
        "size",
        "region",
        "type",
        "tag",
        "site",
        "name",
        "startup",
        "immutable",
        "nonupdatable",
        "conservatively_traversed",
        "is_root",
        "visited",
        "gap_ranges",
    )

    def __init__(
        self,
        base: int,
        size: int,
        region: str,
        type_: Optional[TypeDesc] = None,
        tag: Optional[DataTag] = None,
    ) -> None:
        self.base = base
        self.size = size
        self.region = region
        self.type = type_
        self.tag = tag
        self.site = tag.site if tag is not None else ""
        self.name = tag.name if tag is not None else ""
        self.startup = False
        self.immutable = False
        self.nonupdatable = False
        self.conservatively_traversed = False
        self.is_root = False
        self.visited = False
        # For container blocks holding tagged sub-objects (instrumented
        # custom allocators): the untagged (offset, size) gaps that were
        # conservatively scanned — the only bytes transfer copies verbatim.
        self.gap_ranges = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            c
            for c, on in (
                ("I", self.immutable),
                ("N", self.nonupdatable),
                ("C", self.conservatively_traversed),
                ("R", self.is_root),
            )
            if on
        )
        label = self.name or self.site or (self.type.name if self.type else "opaque")
        return f"<Obj 0x{self.base:x}+{self.size} {self.region} {label} [{flags}]>"


class PointerSlot:
    """One traced pointer: where it sits and what it targets."""

    __slots__ = ("slot_address", "container_base", "value", "target_base", "kind", "interior")

    def __init__(
        self,
        slot_address: int,
        container_base: int,
        value: int,
        target_base: int,
        kind: str,  # "precise" | "likely"
        interior: bool,
    ) -> None:
        self.slot_address = slot_address
        self.container_base = container_base
        self.value = value
        self.target_base = target_base
        self.kind = kind
        self.interior = interior


class AddressResolver:
    """Resolve an address to the live object containing it."""

    def __init__(self, process: Process) -> None:
        self.process = process

    def resolve(self, address: int) -> Optional[Tuple[int, int, Optional[int], Optional[DataTag]]]:
        """Return ``(base, size, align_or_None, tag_or_None)`` or ``None``."""
        process = self.process
        tag = process.tags.find_containing(address)
        if tag is not None:
            return tag.address, tag.type.size, tag.type.align, tag
        chunk = process.heap.find_chunk(address)
        if chunk is not None:
            return chunk.user_base, chunk.user_size, None, None
        # Superobject spans inherited by a previous live update: opaque
        # immutable memory with no chunk bookkeeping.  Without this, a
        # second chained update could not trace pointers into state that
        # the first update pinned.
        reserved = process.heap.reserved_containing(address)
        if reserved is not None:
            return reserved[0], reserved[1], None, None
        symbols = getattr(process, "symbols", None)
        if symbols is not None:
            symbol = symbols.find_containing(address)
            if symbol is not None:
                return symbol.address, symbol.type.size, symbol.type.align, None
        mapping = process.space.mapping_at(address)
        if mapping is not None and mapping.kind == "lib":
            # Untagged library state: resolve at image granularity.
            return mapping.base, mapping.size, None, None
        return None

    def resolve_for_scan(self, address: int) -> Optional[Tuple[int, int, Optional[int]]]:
        resolved = self.resolve(address)
        if resolved is None:
            return None
        base, size, align, _tag = resolved
        return base, size, align


class TraceResult:
    """The object graph plus pointer statistics for one process."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self.objects: Dict[int, ObjectRecord] = {}
        self.precise_pointers: List[PointerSlot] = []
        self.likely_pointers: List[PointerSlot] = []
        self.dangling_precise = 0
        self.words_scanned = 0

    def record_for(self, base: int) -> Optional[ObjectRecord]:
        return self.objects.get(base)

    # -- Table 2 ------------------------------------------------------------------

    def _classify(self, pointers: List[PointerSlot]) -> Dict[str, int]:
        def region_of(address: int) -> str:
            mapping = self.process.space.mapping_at(address)
            if mapping is None:
                return REGION_DYNAMIC
            return _KIND_TO_REGION.get(mapping.kind, REGION_DYNAMIC)

        counts = {
            "ptr": len(pointers),
            "src_static": 0,
            "src_dynamic": 0,
            "src_lib": 0,
            "targ_static": 0,
            "targ_dynamic": 0,
            "targ_lib": 0,
        }
        for slot in pointers:
            counts[f"src_{region_of(slot.slot_address)}"] += 1
            counts[f"targ_{region_of(slot.target_base)}"] += 1
        return counts

    def table2_row(self) -> Dict[str, Dict[str, int]]:
        return {
            "precise": self._classify(self.precise_pointers),
            "likely": self._classify(self.likely_pointers),
        }

    def immutable_objects(self) -> List[ObjectRecord]:
        return [o for o in self.objects.values() if o.immutable]

    def immutable_fraction(self) -> float:
        if not self.objects:
            return 0.0
        return len(self.immutable_objects()) / len(self.objects)


class GraphBuilder:
    """Hybrid precise/conservative traversal of one quiesced process."""

    def __init__(
        self,
        process: Process,
        config: Optional[MCRConfig] = None,
        annotations=None,
    ) -> None:
        self.process = process
        self.config = config or MCRConfig()
        self.annotations = annotations or getattr(
            getattr(process, "program", None), "annotations", None
        )
        self.resolver = AddressResolver(process)
        self.result = TraceResult(process)
        self._worklist: deque = deque()

    # -- public API ---------------------------------------------------------------

    def build(self) -> TraceResult:
        self._add_static_roots()
        self._add_stack_roots()
        while self._worklist:
            record = self._worklist.popleft()
            if record.visited:
                continue
            record.visited = True
            self._visit(record)
        return self.result

    # -- roots -----------------------------------------------------------------------

    def _add_static_roots(self) -> None:
        symbols = getattr(self.process, "symbols", None)
        if symbols is None:
            return
        for symbol in symbols:
            record = self._intern(symbol.address)
            if record is not None:
                record.is_root = True
                record.name = record.name or symbol.name

    def _add_stack_roots(self) -> None:
        crt = getattr(self.process, "crt", None)
        if crt is None:
            return
        for thread in self.process.live_threads():
            area = crt._stacks.get(thread.tid)
            if area is None:
                continue
            for _name, address, _type in area.overlay:
                record = self._intern(address)
                if record is not None:
                    record.is_root = True

    # -- interning ----------------------------------------------------------------------

    def _intern(self, address: int) -> Optional[ObjectRecord]:
        resolved = self.resolver.resolve(address)
        if resolved is None:
            return None
        base, size, _align, tag = resolved
        record = self.result.objects.get(base)
        if record is None:
            region = _KIND_TO_REGION.get(
                getattr(self.process.space.mapping_at(base), "kind", "heap"),
                REGION_DYNAMIC,
            )
            type_ = tag.type if tag is not None else None
            record = ObjectRecord(base, size, region, type_, tag)
            chunk = self.process.heap.find_chunk(base)
            if chunk is not None:
                record.startup = chunk.startup
                if not record.site:
                    record.site = str(chunk.site_id)
            self.result.objects[base] = record
            self._worklist.append(record)
        return record

    # -- visiting ------------------------------------------------------------------------

    def _visit(self, record: ObjectRecord) -> None:
        if record.region == REGION_LIB and not self.config.transfer_shared_libs:
            # Library state is not analyzed by default (paper §6); the
            # object exists (it can be a likely-pointer target) but its
            # contents stay unscanned.
            return
        if (
            self.annotations is not None
            and record.name in self.annotations.encoded_pointers
        ):
            # Annotated encoded pointer (nginx low-bit idiom, union-hidden
            # pointers): decode precisely even though the type is opaque.
            self._visit_encoded(record)
            return
        forced_opaque = (
            self.annotations is not None
            and (record.name in self.annotations.opaque_overrides)
        )
        if record.type is not None and not forced_opaque and not record.type.is_opaque():
            self._visit_precise(record)
        else:
            self._visit_conservative(record, 0, record.size)

    def _visit_encoded(self, record: ObjectRecord) -> None:
        """Decode an annotated encoded-pointer object precisely."""
        space = self.process.space
        mask = self.annotations.encoded_pointers[record.name]
        value = space.read_word(record.base) & ~mask
        if value:
            resolved = self.resolver.resolve(value)
            if resolved is not None:
                target_base = resolved[0]
                if self._intern(target_base) is not None:
                    self.result.precise_pointers.append(
                        PointerSlot(
                            record.base,
                            record.base,
                            value,
                            target_base,
                            "precise",
                            value != target_base,
                        )
                    )

    def _visit_precise(self, record: ObjectRecord) -> None:
        space = self.process.space
        for offset, _ptr_type in precise.pointer_slots(record.type):
            slot = record.base + offset
            value = space.read_word(slot)
            if value == 0:
                continue
            resolved = self.resolver.resolve(value)
            if resolved is None:
                self.result.dangling_precise += 1
                continue
            target_base, _size, _align, _tag = resolved
            target = self._intern(target_base)
            if target is None:
                continue
            self.result.precise_pointers.append(
                PointerSlot(slot, record.base, value, target_base, "precise", value != target_base)
            )
        for offset, size in precise.opaque_ranges(record.type):
            self._visit_conservative(record, offset, size)
        if self.config.scan_opaque_int64:
            slots = precise.int_word_slots(record.type)
            if slots:
                found, scanned = conservative.scan_words(
                    space, iter(slots), record.base, self.resolver.resolve_for_scan
                )
                self.result.words_scanned += scanned
                self._absorb_likely(record, found)

    def _visit_conservative(self, record: ObjectRecord, offset: int, size: int) -> None:
        start = record.base + offset
        end = start + size
        # An untyped container (e.g. a region block from an *instrumented*
        # custom allocator) may hold tagged sub-objects: trace those
        # precisely and scan only the untagged gaps conservatively.  This
        # is what converts likely pointers into precise ones in the
        # paper's nginx_reg configuration.
        inner = []
        if record.tag is None:
            inner = [
                t
                for t in self.process.tags.tags_in_range(start, end)
                if t.address != record.base
            ]
        if offset == 0 and size == record.size:
            record.conservatively_traversed = True
        if inner:
            gaps = []
            cursor = start
            for tag in inner:
                if tag.address > cursor:
                    gaps.append((cursor - record.base, tag.address - cursor))
                self._intern(tag.address)
                cursor = max(cursor, tag.end)
            if cursor < end:
                gaps.append((cursor - record.base, end - cursor))
            record.gap_ranges = gaps
            for gap_offset, gap_size in gaps:
                found, scanned = conservative.scan_range(
                    self.process.space,
                    record.base + gap_offset,
                    gap_size,
                    self.resolver.resolve_for_scan,
                )
                self.result.words_scanned += scanned
                self._absorb_likely(record, found)
            return
        found, scanned = conservative.scan_range(
            self.process.space,
            start,
            size,
            self.resolver.resolve_for_scan,
        )
        self.result.words_scanned += scanned
        self._absorb_likely(record, found)

    def _absorb_likely(self, container: ObjectRecord, found: List[conservative.LikelyPointer]) -> None:
        for likely in found:
            target = self._intern(likely.target_base)
            if target is None:
                continue
            # Invariants (paper §6): targets of likely pointers cannot be
            # relocated nor type-transformed; containers of likely pointers
            # cannot be type-transformed.  The optional interior-only
            # refinement keeps base-pointer targets type-transformable.
            target.immutable = True
            if likely.interior or not self.config.interior_only_nonupdatable:
                target.nonupdatable = True
            container.nonupdatable = True
            self.result.likely_pointers.append(
                PointerSlot(
                    likely.slot_address,
                    container.base,
                    likely.value,
                    likely.target_base,
                    "likely",
                    likely.interior,
                )
            )
