"""Object records, address resolution, and the hybrid walk driver.

``GraphBuilder`` reconstructs the old version's reachable program state:
starting from root objects (global variables, plus the stack variables of
threads parked at quiescent points) it traverses *precisely* wherever a
data-type tag provides layout, and hands every opaque byte range — untagged
allocations, unions, char buffers, pointer-sized integers per policy — to
the conservative scanner.  The result is the object graph plus the
precise/likely pointer statistics of the paper's Table 2.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.kernel.process import Process
from repro.mcr.config import MCRConfig
from repro.mcr.tracing import conservative, precise
from repro.mcr.tracing.incremental import cache_for
from repro.mem import scan_backend
from repro.mem.tags import DataTag
from repro.types.descriptors import TypeDesc

# Memory regions for Table-2 classification.
REGION_STATIC = "static"
REGION_DYNAMIC = "dynamic"
REGION_LIB = "lib"

_KIND_TO_REGION = {
    "data": REGION_STATIC,
    "stack": REGION_STATIC,
    "heap": REGION_DYNAMIC,
    "mmap": REGION_DYNAMIC,
    "lib": REGION_LIB,
}


class ObjectRecord:
    """One state object discovered in the old version."""

    __slots__ = (
        "base",
        "size",
        "region",
        "type",
        "tag",
        "site",
        "name",
        "startup",
        "immutable",
        "nonupdatable",
        "conservatively_traversed",
        "is_root",
        "visited",
        "gap_ranges",
    )

    def __init__(
        self,
        base: int,
        size: int,
        region: str,
        type_: Optional[TypeDesc] = None,
        tag: Optional[DataTag] = None,
    ) -> None:
        self.base = base
        self.size = size
        self.region = region
        self.type = type_
        self.tag = tag
        self.site = tag.site if tag is not None else ""
        self.name = tag.name if tag is not None else ""
        self.startup = False
        self.immutable = False
        self.nonupdatable = False
        self.conservatively_traversed = False
        self.is_root = False
        self.visited = False
        # For container blocks holding tagged sub-objects (instrumented
        # custom allocators): the untagged (offset, size) gaps that were
        # conservatively scanned — the only bytes transfer copies verbatim.
        self.gap_ranges = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            c
            for c, on in (
                ("I", self.immutable),
                ("N", self.nonupdatable),
                ("C", self.conservatively_traversed),
                ("R", self.is_root),
            )
            if on
        )
        label = self.name or self.site or (self.type.name if self.type else "opaque")
        return f"<Obj 0x{self.base:x}+{self.size} {self.region} {label} [{flags}]>"


class PointerSlot:
    """One traced pointer: where it sits and what it targets."""

    __slots__ = ("slot_address", "container_base", "value", "target_base", "kind", "interior")

    def __init__(
        self,
        slot_address: int,
        container_base: int,
        value: int,
        target_base: int,
        kind: str,  # "precise" | "likely"
        interior: bool,
    ) -> None:
        self.slot_address = slot_address
        self.container_base = container_base
        self.value = value
        self.target_base = target_base
        self.kind = kind
        self.interior = interior


class _IntervalIndex:
    """Flattened, priority-merged interval map over one process's objects.

    Address resolution is a five-level cascade (tags, heap chunks,
    reserved superobject spans, static symbols, library images), each
    level a predecessor-by-base containment lookup.  During a trace the
    process is quiesced and none of those levels mutate, so the cascade
    can be snapshotted into one sorted list of non-overlapping segments,
    each carrying its pre-computed resolution payload: resolution becomes
    a single ``bisect`` instead of up to five cascaded lookups per word.

    ``bounds`` (min/max resolvable address) feeds the scanner's prefilter:
    the overwhelming majority of scanned words are non-pointer data far
    outside the live-object address range and are rejected with two
    integer comparisons, never reaching Python-level lookup at all.

    The per-level segment construction reproduces the cascade's
    predecessor-only semantics exactly (including the nesting quirk where
    an outer tag does not cover addresses past an inner tag's end), so
    indexed and cascaded resolution return identical results — asserted
    by the equivalence tests and the scanperf benchmark.
    """

    __slots__ = ("_starts", "_ends", "_payloads", "_prepared")

    def __init__(self, process: Process) -> None:
        levels: List[List[Tuple[int, int, Tuple]]] = []
        # Level 1: data-type tags (may nest inside container blocks).
        tag_items = [
            (t.address, t.end, (t.address, t.type.size, t.type.align, t))
            for t in process.tags.tags()
        ]
        levels.append(self._level_segments(tag_items))
        # Level 2: live heap chunks (user areas; disjoint).
        chunk_items = [
            (c.user_base, c.user_end, (c.user_base, c.user_size, None, None))
            for c in process.heap.chunks()
        ]
        levels.append(self._level_segments(chunk_items))
        # Level 3: reserved superobject spans (disjoint by construction).
        reserved_items = [
            (base, base + size, (base, size, None, None))
            for base, size in sorted(process.heap.reserved_ranges().items())
        ]
        levels.append(self._level_segments(reserved_items))
        # Level 4: static symbols (disjoint: the loader packs them).
        symbols = getattr(process, "symbols", None)
        if symbols is not None:
            symbol_items = sorted(
                (
                    (s.address, s.end, (s.address, s.type.size, s.type.align, None))
                    for s in symbols
                ),
                key=lambda item: item[0],
            )
            levels.append(self._level_segments(symbol_items))
        # Level 5: library images, at image granularity (disjoint).
        lib_items = [
            (m.base, m.end, (m.base, m.size, None, None))
            for m in process.space.mappings(kind="lib")
        ]
        levels.append(self._level_segments(lib_items))
        self._starts, self._ends, self._payloads = self._merge(levels)
        self._prepared: Optional[scan_backend.PreparedScanIndex] = None

    @staticmethod
    def _level_segments(
        items: List[Tuple[int, int, Tuple]]
    ) -> List[Tuple[int, int, Tuple]]:
        """One cascade level as disjoint segments, sorted by start.

        ``items`` must be sorted by start.  Each interval's effective
        coverage ends at the next interval's start (predecessor-only
        lookup semantics): an address past that point finds the *next*
        interval as its predecessor, which may not contain it.
        """
        items = sorted(items, key=lambda item: item[0])
        segments: List[Tuple[int, int, Tuple]] = []
        for i, (start, end, payload) in enumerate(items):
            if i + 1 < len(items):
                end = min(end, items[i + 1][0])
            if end > start:
                segments.append((start, end, payload))
        return segments

    @staticmethod
    def _merge(
        levels: List[List[Tuple[int, int, Tuple]]]
    ) -> Tuple[List[int], List[int], List[Tuple]]:
        """Flatten priority-ordered levels into non-overlapping segments."""
        boundaries = sorted(
            {edge for segments in levels for s, e, _ in segments for edge in (s, e)}
        )
        level_starts = [[s for s, _, _ in segments] for segments in levels]
        starts: List[int] = []
        ends: List[int] = []
        payloads: List[Tuple] = []
        for j in range(len(boundaries) - 1):
            lo, hi = boundaries[j], boundaries[j + 1]
            chosen: Optional[Tuple] = None
            for level, segments in enumerate(levels):
                k = bisect.bisect_right(level_starts[level], lo) - 1
                if k >= 0 and segments[k][1] > lo:
                    chosen = segments[k][2]
                    break
            if chosen is None:
                continue
            if starts and ends[-1] == lo and payloads[-1] is chosen:
                ends[-1] = hi  # coalesce adjacent same-payload segments
            else:
                starts.append(lo)
                ends.append(hi)
                payloads.append(chosen)
        return starts, ends, payloads

    def lookup(self, address: int) -> Optional[Tuple[int, int, Optional[int], Optional[DataTag]]]:
        i = bisect.bisect_right(self._starts, address) - 1
        if i >= 0 and address < self._ends[i]:
            return self._payloads[i]
        return None

    def bounds(self) -> Tuple[int, int]:
        """(lo, hi): nothing outside ``lo <= address < hi`` resolves."""
        if not self._starts:
            return (0, 0)
        return self._starts[0], self._ends[-1]

    def prepared(self) -> scan_backend.PreparedScanIndex:
        """The segment arrays snapshotted for the active vectorized backend.

        Built lazily (once per index — i.e. once per traced process per
        update) and cached: the index is immutable for its lifetime.
        """
        if self._prepared is None:
            self._prepared = scan_backend.prepare(
                self._starts, self._ends, self._payloads
            )
        return self._prepared


class AddressResolver:
    """Resolve an address to the live object containing it."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self._index: Optional[_IntervalIndex] = None

    def build_index(self) -> None:
        """Snapshot live objects into an interval index (quiesced process).

        Valid only while tags/heap/symbols/mappings do not change — the
        GraphBuilder scopes it to one ``build()`` and drops it after.
        """
        self._index = _IntervalIndex(self.process)

    def drop_index(self) -> None:
        self._index = None

    def scan_bounds(self) -> Optional[Tuple[int, int]]:
        """The scanner prefilter window, when an index is active."""
        if self._index is None:
            return None
        return self._index.bounds()

    def scan_index(self) -> Optional[scan_backend.PreparedScanIndex]:
        """The vectorized-backend snapshot, when an index is active."""
        if self._index is None:
            return None
        return self._index.prepared()

    def resolve(self, address: int) -> Optional[Tuple[int, int, Optional[int], Optional[DataTag]]]:
        """Return ``(base, size, align_or_None, tag_or_None)`` or ``None``."""
        index = self._index
        if index is not None:
            return index.lookup(address)
        process = self.process
        tag = process.tags.find_containing(address)
        if tag is not None:
            return tag.address, tag.type.size, tag.type.align, tag
        chunk = process.heap.find_chunk(address)
        if chunk is not None:
            return chunk.user_base, chunk.user_size, None, None
        # Superobject spans inherited by a previous live update: opaque
        # immutable memory with no chunk bookkeeping.  Without this, a
        # second chained update could not trace pointers into state that
        # the first update pinned.
        reserved = process.heap.reserved_containing(address)
        if reserved is not None:
            return reserved[0], reserved[1], None, None
        symbols = getattr(process, "symbols", None)
        if symbols is not None:
            symbol = symbols.find_containing(address)
            if symbol is not None:
                return symbol.address, symbol.type.size, symbol.type.align, None
        mapping = process.space.mapping_at(address)
        if mapping is not None and mapping.kind == "lib":
            # Untagged library state: resolve at image granularity.
            return mapping.base, mapping.size, None, None
        return None

    def resolve_for_scan(self, address: int) -> Optional[Tuple[int, int, Optional[int]]]:
        index = self._index
        if index is not None:
            resolved = index.lookup(address)
        else:
            resolved = self.resolve(address)
        if resolved is None:
            return None
        base, size, align, _tag = resolved
        return base, size, align


class TraceResult:
    """The object graph plus pointer statistics for one process."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self.objects: Dict[int, ObjectRecord] = {}
        self.precise_pointers: List[PointerSlot] = []
        self.likely_pointers: List[PointerSlot] = []
        self.dangling_precise = 0
        self.words_scanned = 0

    def record_for(self, base: int) -> Optional[ObjectRecord]:
        return self.objects.get(base)

    # -- Table 2 ------------------------------------------------------------------

    def _classify(self, pointers: List[PointerSlot]) -> Dict[str, int]:
        def region_of(address: int) -> str:
            mapping = self.process.space.mapping_at(address)
            if mapping is None:
                return REGION_DYNAMIC
            return _KIND_TO_REGION.get(mapping.kind, REGION_DYNAMIC)

        counts = {
            "ptr": len(pointers),
            "src_static": 0,
            "src_dynamic": 0,
            "src_lib": 0,
            "targ_static": 0,
            "targ_dynamic": 0,
            "targ_lib": 0,
        }
        for slot in pointers:
            counts[f"src_{region_of(slot.slot_address)}"] += 1
            counts[f"targ_{region_of(slot.target_base)}"] += 1
        return counts

    def table2_row(self) -> Dict[str, Dict[str, int]]:
        return {
            "precise": self._classify(self.precise_pointers),
            "likely": self._classify(self.likely_pointers),
        }

    def immutable_objects(self) -> List[ObjectRecord]:
        return [o for o in self.objects.values() if o.immutable]

    def immutable_fraction(self) -> float:
        if not self.objects:
            return 0.0
        return len(self.immutable_objects()) / len(self.objects)


class GraphBuilder:
    """Hybrid precise/conservative traversal of one quiesced process."""

    def __init__(
        self,
        process: Process,
        config: Optional[MCRConfig] = None,
        annotations=None,
        shared_cache=None,
    ) -> None:
        self.process = process
        self.config = config or MCRConfig()
        self.annotations = annotations or getattr(
            getattr(process, "program", None), "annotations", None
        )
        self.resolver = AddressResolver(process)
        self.result = TraceResult(process)
        self._worklist: deque = deque()
        self._fast_scan = getattr(self.config, "fast_scan", True)
        self._scan_cache = (
            cache_for(process)
            if getattr(self.config, "incremental_scan", True)
            else None
        )
        # Cross-worker memoization (rolling updates only): forked workers
        # share startup-time pages, so identical ranges are scanned once.
        self._shared_cache = shared_cache

    # -- public API ---------------------------------------------------------------

    def build(self) -> TraceResult:
        # The process is quiesced for the duration of a trace, so the
        # resolver can snapshot live objects into an interval index; the
        # scan cache revalidates against writes/allocations since the
        # previous sweep (dirty-page-incremental tracing).
        if self._fast_scan:
            self.resolver.build_index()
        if self._scan_cache is not None:
            self._scan_cache.begin_round()
        if self._shared_cache is not None:
            self._shared_cache.begin_process(self.process)
        try:
            self._add_static_roots()
            self._add_stack_roots()
            while self._worklist:
                record = self._worklist.popleft()
                if record.visited:
                    continue
                record.visited = True
                self._visit(record)
        finally:
            self.resolver.drop_index()
        return self.result

    # -- scan kernels -------------------------------------------------------------

    def _scan_range(self, start: int, size: int):
        """One conservative range scan: cached -> bulk -> reference."""
        cache = self._scan_cache
        if cache is not None:
            hit = cache.lookup(start, size)
            if hit is not None:
                return hit
        shared = self._shared_cache
        if shared is not None:
            hit = shared.lookup(self.process, start, size)
            if hit is not None:
                found, scanned = hit
                if cache is not None:
                    cache.store(start, size, found, scanned)
                return hit
        if self._fast_scan:
            found, scanned = conservative.scan_range(
                self.process.space,
                start,
                size,
                self.resolver.resolve_for_scan,
                bounds=self.resolver.scan_bounds(),
                index=self.resolver.scan_index(),
            )
        else:
            found, scanned = conservative.scan_range_ref(
                self.process.space, start, size, self.resolver.resolve_for_scan
            )
        if cache is not None:
            cache.store(start, size, found, scanned)
        if shared is not None:
            shared.store(self.process, start, size, found, scanned)
        return found, scanned

    def _scan_words(self, offsets, base: int):
        if self._fast_scan:
            return conservative.scan_words(
                self.process.space,
                offsets,
                base,
                self.resolver.resolve_for_scan,
                bounds=self.resolver.scan_bounds(),
            )
        return conservative.scan_words_ref(
            self.process.space, offsets, base, self.resolver.resolve_for_scan
        )

    # -- roots -----------------------------------------------------------------------

    def _add_static_roots(self) -> None:
        symbols = getattr(self.process, "symbols", None)
        if symbols is None:
            return
        for symbol in symbols:
            record = self._intern(symbol.address)
            if record is not None:
                record.is_root = True
                record.name = record.name or symbol.name

    def _add_stack_roots(self) -> None:
        crt = getattr(self.process, "crt", None)
        if crt is None:
            return
        for thread in self.process.live_threads():
            area = crt._stacks.get(thread.tid)
            if area is None:
                continue
            for _name, address, _type in area.overlay:
                record = self._intern(address)
                if record is not None:
                    record.is_root = True

    # -- interning ----------------------------------------------------------------------

    def _intern(self, address: int) -> Optional[ObjectRecord]:
        resolved = self.resolver.resolve(address)
        if resolved is None:
            return None
        base, size, _align, tag = resolved
        record = self.result.objects.get(base)
        if record is None:
            region = _KIND_TO_REGION.get(
                getattr(self.process.space.mapping_at(base), "kind", "heap"),
                REGION_DYNAMIC,
            )
            type_ = tag.type if tag is not None else None
            record = ObjectRecord(base, size, region, type_, tag)
            chunk = self.process.heap.find_chunk(base)
            if chunk is not None:
                record.startup = chunk.startup
                if not record.site:
                    record.site = str(chunk.site_id)
            self.result.objects[base] = record
            self._worklist.append(record)
        return record

    # -- visiting ------------------------------------------------------------------------

    def _visit(self, record: ObjectRecord) -> None:
        if record.region == REGION_LIB and not self.config.transfer_shared_libs:
            # Library state is not analyzed by default (paper §6); the
            # object exists (it can be a likely-pointer target) but its
            # contents stay unscanned.
            return
        if (
            self.annotations is not None
            and record.name in self.annotations.encoded_pointers
        ):
            # Annotated encoded pointer (nginx low-bit idiom, union-hidden
            # pointers): decode precisely even though the type is opaque.
            self._visit_encoded(record)
            return
        forced_opaque = (
            self.annotations is not None
            and (record.name in self.annotations.opaque_overrides)
        )
        if record.type is not None and not forced_opaque and not record.type.is_opaque():
            self._visit_precise(record)
        else:
            self._visit_conservative(record, 0, record.size)

    def _visit_encoded(self, record: ObjectRecord) -> None:
        """Decode an annotated encoded-pointer object precisely."""
        space = self.process.space
        mask = self.annotations.encoded_pointers[record.name]
        value = space.read_word(record.base) & ~mask
        if value:
            resolved = self.resolver.resolve(value)
            if resolved is not None:
                target_base = resolved[0]
                if self._intern(target_base) is not None:
                    self.result.precise_pointers.append(
                        PointerSlot(
                            record.base,
                            record.base,
                            value,
                            target_base,
                            "precise",
                            value != target_base,
                        )
                    )

    def _visit_precise(self, record: ObjectRecord) -> None:
        space = self.process.space
        for offset, _ptr_type in precise.pointer_slots(record.type):
            slot = record.base + offset
            value = space.read_word(slot)
            if value == 0:
                continue
            resolved = self.resolver.resolve(value)
            if resolved is None:
                self.result.dangling_precise += 1
                continue
            target_base, _size, _align, _tag = resolved
            target = self._intern(target_base)
            if target is None:
                continue
            self.result.precise_pointers.append(
                PointerSlot(slot, record.base, value, target_base, "precise", value != target_base)
            )
        for offset, size in precise.opaque_ranges(record.type):
            self._visit_conservative(record, offset, size)
        if self.config.scan_opaque_int64:
            slots = precise.int_word_slots(record.type)
            if slots:
                found, scanned = self._scan_words(iter(slots), record.base)
                self.result.words_scanned += scanned
                self._absorb_likely(record, found)

    def _visit_conservative(self, record: ObjectRecord, offset: int, size: int) -> None:
        start = record.base + offset
        end = start + size
        # An untyped container (e.g. a region block from an *instrumented*
        # custom allocator) may hold tagged sub-objects: trace those
        # precisely and scan only the untagged gaps conservatively.  This
        # is what converts likely pointers into precise ones in the
        # paper's nginx_reg configuration.
        inner = []
        if record.tag is None:
            inner = [
                t
                for t in self.process.tags.tags_in_range(start, end)
                if t.address != record.base
            ]
        if offset == 0 and size == record.size:
            record.conservatively_traversed = True
        if inner:
            gaps = []
            cursor = start
            for tag in inner:
                if tag.address > cursor:
                    gaps.append((cursor - record.base, tag.address - cursor))
                self._intern(tag.address)
                cursor = max(cursor, tag.end)
            if cursor < end:
                gaps.append((cursor - record.base, end - cursor))
            record.gap_ranges = gaps
            for gap_offset, gap_size in gaps:
                found, scanned = self._scan_range(record.base + gap_offset, gap_size)
                self.result.words_scanned += scanned
                self._absorb_likely(record, found)
            return
        found, scanned = self._scan_range(start, size)
        self.result.words_scanned += scanned
        self._absorb_likely(record, found)

    def _absorb_likely(self, container: ObjectRecord, found: List[conservative.LikelyPointer]) -> None:
        for likely in found:
            target = self._intern(likely.target_base)
            if target is None:
                continue
            # Invariants (paper §6): targets of likely pointers cannot be
            # relocated nor type-transformed; containers of likely pointers
            # cannot be type-transformed.  The optional interior-only
            # refinement keeps base-pointer targets type-transformable.
            target.immutable = True
            if likely.interior or not self.config.interior_only_nonupdatable:
                target.nonupdatable = True
            container.nonupdatable = True
            self.result.likely_pointers.append(
                PointerSlot(
                    likely.slot_address,
                    container.base,
                    likely.value,
                    likely.target_base,
                    "likely",
                    likely.interior,
                )
            )
