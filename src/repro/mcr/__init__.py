"""Mutable Checkpoint-Restart: the paper's contribution.

The three pillars, each a subpackage/module:

* ``quiescence`` — profiling (finding per-thread quiescent points) and
  detection (unblockification + barrier protocol) — paper §4.
* ``reinit``     — mutable reinitialization: startup-log record/replay,
  immutable state objects, global inheritance/separability, global
  reallocation — paper §5.
* ``tracing``    — mutable tracing: dirty-object detection, hybrid
  precise/conservative GC-style traversal, invariants, type
  transformation, and the state-transfer engine — paper §6.

``controller`` orchestrates a live update end to end (checkpoint →
restart → remap, with atomic rollback), and ``ctl`` is the ``mcr-ctl``
front end users signal updates with.

Heavy submodules are imported lazily to keep the package cycle-free
(``runtime.libmcr`` needs ``mcr.config`` at import time).
"""

from repro.mcr.annotations import Annotations
from repro.mcr.config import MCRConfig, TransferCostModel

__all__ = [
    "Annotations",
    "MCRConfig",
    "TransferCostModel",
    "LiveUpdateController",
    "UpdateResult",
    "McrCtl",
]


def __getattr__(name):
    if name in ("LiveUpdateController", "UpdateResult"):
        from repro.mcr import controller

        return getattr(controller, name)
    if name == "McrCtl":
        from repro.mcr.ctl import McrCtl

        return McrCtl
    raise AttributeError(f"module 'repro.mcr' has no attribute {name!r}")
