"""MCR tunables and the state-transfer cost model.

Quiescence/unblockification knobs control the detection protocol of §4;
the transfer cost constants convert mutable-tracing work items into
virtual milliseconds for the update-time evaluation (Figure 3).  The
constants are calibrated so an idle single-process server lands in the
paper's 28–187 ms baseline band; only the *shape* across servers and
connection counts is asserted by the benchmarks.
"""

from __future__ import annotations


class MCRConfig:
    """Session-wide policy knobs."""

    def __init__(
        self,
        unblockify_slice_ns: int = 20_000_000,   # 20 ms timeout slices
        unblockify_poll_cost_ns: int = 1_200,    # cost of each re-arm
        unblockify_entry_cost_ns: int = 260,     # wrapper entry per call
        quiescence_deadline_ns: int = 1_000_000_000,  # 1 s barrier deadline
        quiescence_max_retries: int = 2,         # extra wait attempts on timeout
        quiescence_backoff_ns: int = 25_000_000, # first retry backoff (doubles)
        scan_opaque_int64: bool = True,          # pointer-sized ints are opaque
        scan_char_arrays: bool = True,           # char arrays are opaque
        transfer_shared_libs: bool = False,      # paper default: don't
        conservative_interior_pointers: bool = True,
        interior_only_nonupdatable: bool = False,
        fast_scan: bool = True,                  # bulk kernels + interval index
        incremental_scan: bool = True,           # dirty-page scan memoization
        faults=None,                             # FaultPlan (None = nothing armed)
        verify_rollback: bool = True,            # fingerprint-check rolled-back trees
        downtime_budget_ns: int = 1_000_000_000, # client-perceived SLO budget (1 s)
        blackbox_path=None,                      # where to dump blackbox.json
        update_mode: str = "whole-tree",         # "whole-tree" | "rolling"
        rolling_batch: int = 1,                  # workers quiesced/transferred per batch
        checkpoint_path=None,                    # durable image file (None = in-memory only)
        checkpoint_interval_ns: int = 100_000_000,  # incremental-checkpoint cadence (100 ms)
    ) -> None:
        self.unblockify_slice_ns = unblockify_slice_ns
        self.unblockify_poll_cost_ns = unblockify_poll_cost_ns
        self.unblockify_entry_cost_ns = unblockify_entry_cost_ns
        self.quiescence_deadline_ns = quiescence_deadline_ns
        # On QuiescenceTimeout the controller retries the barrier wait up
        # to ``quiescence_max_retries`` times, advancing the virtual clock
        # by an exponentially growing backoff before each attempt, before
        # declaring the update failed.
        self.quiescence_max_retries = quiescence_max_retries
        self.quiescence_backoff_ns = quiescence_backoff_ns
        self.scan_opaque_int64 = scan_opaque_int64
        self.scan_char_arrays = scan_char_arrays
        self.transfer_shared_libs = transfer_shared_libs
        self.conservative_interior_pointers = conservative_interior_pointers
        # Paper §6: "we could restrict [nonupdatability] to only interior
        # pointers ... but we have not implemented this option yet."  We
        # did: with this flag, a likely pointer to an object *base* pins
        # the target (immutable) but leaves it type-transformable, since a
        # base pointer survives any same-address layout change.
        self.interior_only_nonupdatable = interior_only_nonupdatable
        # Perf knobs (host wall time only; virtual-time accounting and
        # every traced-pointer statistic are identical either way).
        # ``fast_scan``: bulk word decoding + interval-indexed resolution
        # with a min/max prefilter.  ``incremental_scan``: reuse scan
        # results across trace sweeps when no overlapping page was
        # written since (soft-dirty-style write sequencing).
        self.fast_scan = fast_scan
        self.incremental_scan = incremental_scan
        # Fault injection (``repro.mcr.faults``): a ``FaultPlan`` armed at
        # named pipeline sites, or None.  With None every injection point
        # is a single attribute read, so the production path is untouched.
        self.faults = faults
        # After every rolled-back update, compare a host-side fingerprint
        # of the old tree (memory CRCs, fd tables, allocator state,
        # listeners) against the checkpoint-time capture and record the
        # verdict in ``UpdateResult.rollback_verified``.
        self.verify_rollback = verify_rollback
        # Client-perceived SLO: an update "meets SLO" when the measured
        # blackout interval (longest gap in completed responses) stays
        # within this budget.  The paper's headline claim is that the
        # whole update takes well under 1 s, so that is the default.
        self.downtime_budget_ns = downtime_budget_ns
        # When set, every failed/rolled-back update dumps the flight
        # recorder's black-box (last events, open span stack, tree
        # fingerprint) to this path as JSON; None keeps it in memory only
        # (``UpdateResult.blackbox``).
        self.blackbox_path = blackbox_path
        # Update orchestration mode.  "whole-tree" (the default) quiesces
        # the entire process tree and transfers it as one transaction —
        # its virtual-time accounting is unchanged from earlier releases.
        # "rolling" quiesces/traces/transfers one worker batch at a time
        # (CRIU pre-dump style) while the remaining workers keep serving,
        # master handed off last; the whole sequence still commits or
        # rolls back atomically.  ``rolling_batch`` sets how many workers
        # one batch holds.
        if update_mode not in ("whole-tree", "rolling"):
            raise ValueError(
                f"update_mode must be 'whole-tree' or 'rolling', got {update_mode!r}"
            )
        self.update_mode = update_mode
        self.rolling_batch = max(1, int(rolling_batch))
        # Durable checkpointing (``repro.checkpoint``).  ``checkpoint_path``
        # is where full images are written (atomically: tmp + rename, so a
        # torn write never replaces the last good image); None keeps
        # images in memory only.  ``checkpoint_interval_ns`` is the
        # cadence at which incremental deltas are cut and streamed to a
        # warm standby — the knob the failover bench sweeps against RTO.
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval_ns = int(checkpoint_interval_ns)


class TransferCostModel:
    """Virtual-time costs of state-transfer work items (ns).

    Mutable tracing runs in the controller (host Python), so its duration
    must be charged to the virtual clock explicitly.  The per-process
    setup cost is serial at the central coordinator; per-object work
    parallelizes across the process hierarchy (paper §6: "fully
    parallelizing the state transfer operations in a multiprocess
    context"), so total time = serial setup + max over processes.
    """

    def __init__(
        self,
        process_channel_setup_ns: int = 2_600_000,  # connect + shm channel
        per_object_visit_ns: int = 2_700,
        per_pointer_fixup_ns: int = 900,
        per_byte_copy_ns: int = 3,
        per_page_scan_ns: int = 1_500,              # soft-dirty retrieval
        per_transform_ns: int = 6_000,              # type transformation
        per_likely_scan_word_ns: int = 14,
        per_fd_restore_ns: int = 150_000,           # in-kernel fd restore
        base_coordination_ns: int = 16_000_000,     # coordinator bring-up
    ) -> None:
        self.process_channel_setup_ns = process_channel_setup_ns
        self.per_object_visit_ns = per_object_visit_ns
        self.per_pointer_fixup_ns = per_pointer_fixup_ns
        self.per_byte_copy_ns = per_byte_copy_ns
        self.per_page_scan_ns = per_page_scan_ns
        self.per_transform_ns = per_transform_ns
        self.per_likely_scan_word_ns = per_likely_scan_word_ns
        self.per_fd_restore_ns = per_fd_restore_ns
        self.base_coordination_ns = base_coordination_ns
