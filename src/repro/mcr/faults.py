"""Fault injection and rollback verification for the update transaction.

MCR's headline safety property (paper §3, §6.3) is that a failed live
update is *never* fatal: a conflict, crash, or timeout during any phase
aborts the update and the old version keeps serving, byte-identical to
before.  This module provides the two halves of *proving* that:

* ``FaultPlan`` — the injection plane.  A plan is registered on
  ``MCRConfig`` and can arm any of the named ``SITES`` threaded through
  the pipeline (quiescence, replay, transfer, fd handoff, commit, even
  the rollback path itself).  Triggers are deterministic (fire on the
  nth hit of a site) or seeded-probabilistic; every firing emits a
  ``fault.injected`` event through ``repro.obs``.  With no plan armed,
  every injection point is a single attribute read — the empty-plan run
  is byte-identical to a build without this module.

* ``TreeFingerprint`` — the rollback verifier.  A cheap snapshot of a
  quiesced process tree: per-mapping CRCs taken over the zero-copy
  ``AddressSpace.view`` windows of the fast-scan engine, fd-table and
  socket/listener state (including refcounts, so a leaked or dropped
  reference is caught), and allocator bin counts.  The controller
  captures one at the checkpoint and asserts it unchanged after every
  rolled-back update — the "old version resumes from the checkpoint,
  invisibly to clients" guarantee, checked byte for byte.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.replay.rng import RngStream, derive_seed
from repro.errors import (
    AllocatorError,
    ConflictError,
    ImageError,
    MCRError,
    MemoryFault,
    PromotionError,
    QuiescenceTimeout,
    SimError,
)

# -- the fault-site taxonomy ---------------------------------------------------
#
# Each site names one failure mode of the update transaction, in pipeline
# order.  ``bench faultmatrix`` iterates this registry; docs/robustness.md
# documents how to add a new one (add it here, call ``fire`` at the site,
# cover it in the matrix).

UPDATE_SITES: Dict[str, str] = {
    "quiescence.wait": "checkpoint barrier never converges",
    "offline.analysis": "conservative tracing of the quiesced old tree fails",
    "restart.spawn": "the new-version bootstrap cannot be started",
    "restart.fd_handoff": "global-inheritance descriptor handoff dies mid-stream",
    "reinit.replay": "startup replay flags a conflict",
    "control.migration": "new-version threads never park at the barrier",
    "restore.handlers": "a post_startup reinit handler crashes",
    "restore.fds": "post-startup descriptor restore fails",
    "transfer.memory": "mutable tracing takes a memory fault mid-transfer",
    "transfer.allocator": "the new heap rejects a transfer allocation",
    "commit.prepare": "commit preparation fails (before the point of no return)",
    "commit.critical": "crash inside commit, after the point of no return",
    "rollback": "the rollback path itself faults (double fault)",
}

# Failure modes of the durable-checkpoint / warm-standby plane
# (``repro.checkpoint`` + the fleet failover driver).  These never fire
# during a live update; ``bench faultmatrix`` exercises them through
# failover drills instead of update cells.
CHECKPOINT_SITES: Dict[str, str] = {
    "checkpoint.capture": "quiesce-and-serialize of the tree fails mid-checkpoint",
    "checkpoint.write": "the durable image write dies mid-file (torn image)",
    "checkpoint.delta": "incremental dirty-page capture fails",
    "stream.send": "the delta stream to the standby dies mid-send",
    "stream.apply": "the standby rejects/corrupts an applied delta",
    "restore.image": "rehydrating an image into a fresh kernel fails",
    "standby.promote": "standby promotion fails its integrity verification",
}

# Failure modes of the planned-migration plane (``repro.fleet.migration``):
# pre-copy rounds while the primary serves, the quiesced stop-and-copy,
# and the load-balancer cutover.  Like the checkpoint sites these never
# fire during a live update; ``bench faultmatrix`` and ``bench migrate``
# exercise them through migration drills.
MIGRATION_SITES: Dict[str, str] = {
    "migrate.precopy": "a pre-copy delta round dies while the primary serves",
    "migrate.stopcopy": "the final quiesced stop-and-copy fails mid-stream",
    "migrate.cutover": "the load-balancer cutover / target promotion fails",
}

SITES: Dict[str, str] = {**UPDATE_SITES, **CHECKPOINT_SITES, **MIGRATION_SITES}

# Default error each site raises when the arm does not name one.
DEFAULT_ERRORS: Dict[str, Callable[[], BaseException]] = {
    "quiescence.wait": lambda: QuiescenceTimeout(
        "injected: quiescence never reached"
    ),
    "offline.analysis": lambda: SimError("injected: offline analysis crashed"),
    "restart.spawn": lambda: SimError("injected: restart environment broken"),
    "restart.fd_handoff": lambda: SimError(
        "injected: inheritance socket died mid-handoff"
    ),
    "reinit.replay": lambda: ConflictError(
        "reinit", "injected-operation", "injected replay conflict"
    ),
    "control.migration": lambda: MCRError(
        "injected: control migration wedged"
    ),
    "restore.handlers": lambda: SimError(
        "injected: post_startup handler crashed"
    ),
    "restore.fds": lambda: SimError("injected: fd restore channel broken"),
    "transfer.memory": lambda: MemoryFault(
        0xDEAD0000, "injected transfer fault"
    ),
    "transfer.allocator": lambda: AllocatorError(
        "injected: transfer allocation refused"
    ),
    "commit.prepare": lambda: MCRError("injected: commit preparation failed"),
    "commit.critical": lambda: MCRError(
        "injected: crash inside commit critical section"
    ),
    "rollback": lambda: MCRError("injected: rollback step crashed"),
    "checkpoint.capture": lambda: SimError(
        "injected: checkpoint capture crashed mid-serialize"
    ),
    "checkpoint.write": lambda: SimError(
        "injected: image write died mid-file"
    ),
    "checkpoint.delta": lambda: SimError(
        "injected: dirty-page delta capture crashed"
    ),
    "stream.send": lambda: SimError(
        "injected: delta stream channel died mid-send"
    ),
    "stream.apply": lambda: ImageError(
        "delta", "injected: standby rejected applied delta"
    ),
    "restore.image": lambda: ImageError(
        "restore", "injected: image rehydration crashed"
    ),
    "standby.promote": lambda: PromotionError(
        "injected: standby failed promotion verification"
    ),
    "migrate.precopy": lambda: SimError(
        "injected: pre-copy delta round crashed"
    ),
    "migrate.stopcopy": lambda: SimError(
        "injected: stop-and-copy died mid-stream"
    ),
    "migrate.cutover": lambda: PromotionError(
        "injected: cutover to the migration target failed"
    ),
}


class FaultArm:
    """One armed injection: where, what to raise, and when to trigger."""

    def __init__(
        self,
        site: str,
        error: Optional[Any] = None,
        nth: int = 1,
        times: int = 1,
        probability: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if site not in SITES:
            raise ValueError(
                f"unknown fault site {site!r}; choose from {sorted(SITES)}"
            )
        self.site = site
        self.error = error
        # Deterministic trigger: fire on hits [nth, nth + times).
        self.nth = nth
        self.times = times
        # Probabilistic trigger: each hit fires with probability p, drawn
        # from a per-arm seeded ``repro.replay`` stream — reproducible
        # across runs, attributable by name, and recorded draw-by-draw
        # whenever a TraceLog is active.  An explicit seed reproduces the
        # exact ``random.Random(seed)`` sequence; with no seed the stream
        # derives one from the site name instead of ambient entropy.
        self.probability = probability
        self.seed = seed
        if probability is not None:
            stream_name = f"faults.{site}"
            self._rng: Optional[RngStream] = RngStream(
                stream_name,
                derive_seed(0, stream_name) if seed is None else seed,
            )
        else:
            self._rng = None
        self.hits = 0
        self.fired = 0

    def should_fire(self) -> bool:
        self.hits += 1
        if self.probability is not None:
            return self._rng.random() < self.probability
        return self.nth <= self.hits < self.nth + self.times

    def make_error(self) -> BaseException:
        error = self.error
        if error is None:
            error = DEFAULT_ERRORS[self.site]
        if isinstance(error, BaseException):
            return error
        return error()

    def reset(self) -> None:
        self.hits = 0
        self.fired = 0
        if self.probability is not None:
            # Probabilistic arms keep their stream position: reset only
            # restarts hit counting (a fresh stream needs a fresh arm).
            pass

    def to_spec(self) -> Dict[str, Any]:
        """JSON-serializable trigger description (defaults-only errors).

        Custom error *objects* are not captured — a re-executed arm
        raises the site's default error instead.  Every scenario the
        record/replay and fuzzing planes generate uses default errors,
        so round-tripping through a spec is lossless there.
        """
        spec: Dict[str, Any] = {"site": self.site}
        if self.probability is not None:
            spec["probability"] = self.probability
            if self.seed is not None:
                spec["seed"] = self.seed
        else:
            spec["nth"] = self.nth
            spec["times"] = self.times
        return spec


class FaultPlan:
    """A set of armed fault injections, registered on ``MCRConfig``.

    Builder-style: ``FaultPlan().at("transfer.memory").at("rollback")``
    arms a double fault.  ``fire(site)`` is called by the pipeline at
    each injection point and raises the armed error when a trigger
    matches; unarmed sites cost one dict lookup.
    """

    def __init__(self) -> None:
        self._arms: Dict[str, List[FaultArm]] = {}
        self.injected: List[Tuple[str, int]] = []  # (site, hit number)
        self.last_fired: Optional[str] = None

    # -- arming ---------------------------------------------------------------

    def at(
        self,
        site: str,
        error: Optional[Any] = None,
        nth: int = 1,
        times: int = 1,
    ) -> "FaultPlan":
        """Arm ``site`` to fire deterministically on hits nth..nth+times-1."""
        arm = FaultArm(site, error=error, nth=nth, times=times)
        self._arms.setdefault(site, []).append(arm)
        return self

    def with_probability(
        self,
        site: str,
        p: float,
        error: Optional[Any] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Arm ``site`` to fire on each hit with probability ``p`` (seeded)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        arm = FaultArm(site, error=error, probability=p, seed=seed)
        self._arms.setdefault(site, []).append(arm)
        return self

    # -- firing ---------------------------------------------------------------

    def fire(self, site: str) -> None:
        """Raise the armed error if a trigger for ``site`` matches."""
        arms = self._arms.get(site)
        if not arms:
            return
        for arm in arms:
            if arm.should_fire():
                arm.fired += 1
                self.injected.append((site, arm.hits))
                self.last_fired = site
                error = arm.make_error()
                # Tag the exception so the controller can report the
                # exact failure site without guessing from span state.
                try:
                    error.fault_site = site
                except AttributeError:  # pragma: no cover - exotic errors
                    pass
                obs.incr("faults.injected")
                obs.emit(
                    "fault.injected",
                    severity="warn",
                    site=site,
                    hit=arm.hits,
                    error=type(error).__name__,
                )
                raise error

    # -- bookkeeping ----------------------------------------------------------

    def armed_sites(self) -> List[str]:
        return sorted(self._arms)

    def hit_counts(self) -> Dict[str, int]:
        return {
            site: sum(arm.hits for arm in arms)
            for site, arms in self._arms.items()
        }

    def reset(self) -> None:
        """Restart hit counting (reuse one plan across update attempts)."""
        self.injected.clear()
        self.last_fired = None
        for arms in self._arms.values():
            for arm in arms:
                arm.reset()

    # -- spec round-trip (record/replay + fuzzing) -----------------------------

    def to_spec(self) -> List[Dict[str, Any]]:
        """JSON-serializable arm list, re-creatable via ``from_spec``."""
        return [
            arm.to_spec()
            for site in sorted(self._arms)
            for arm in self._arms[site]
        ]

    @classmethod
    def from_spec(cls, arms: List[Dict[str, Any]]) -> "FaultPlan":
        """Rebuild a plan from ``to_spec`` output (default errors only)."""
        plan = cls()
        for spec in arms:
            site = spec["site"]
            if "probability" in spec:
                plan.with_probability(
                    site, spec["probability"], seed=spec.get("seed", 0)
                )
            else:
                plan.at(
                    site,
                    nth=spec.get("nth", 1),
                    times=spec.get("times", 1),
                )
        return plan

    def __bool__(self) -> bool:
        return bool(self._arms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan armed={self.armed_sites()}>"


def fire(config: Any, site: str) -> None:
    """Fire ``site`` against the plan on ``config`` (no-op when unarmed).

    The injection points call this helper so that a config without a
    plan — the production default — costs one attribute read.
    """
    plan = getattr(config, "faults", None)
    if plan is not None:
        plan.fire(site)


# -- the rollback verifier ------------------------------------------------------


class TreeFingerprint:
    """A cheap, exact snapshot of one process tree's externally visible state.

    Three surfaces per process, plus the world's listener table:

    * memory — one CRC32 per mapping, computed over the zero-copy
      ``AddressSpace.view`` window (the fast-scan read path), so a single
      flipped byte anywhere in the tree's image changes the fingerprint;
    * descriptors — ``(fd, kind, refcount, closed)`` per fd-table entry:
      catches leaked references, dropped descriptors, and sockets closed
      under the old version's feet;
    * allocator — live chunk count/bytes, free-list bin total, and
      reserved-range count: catches stray allocations or frees.
    """

    def __init__(
        self,
        processes: Dict[Tuple[int, str], Tuple],
        listeners: Tuple,
    ) -> None:
        self.processes = processes
        self.listeners = listeners

    @classmethod
    def capture(
        cls,
        kernel: Any,
        root: Any,
        processes_subset: Optional[List[Any]] = None,
        include_refcounts: bool = True,
    ) -> "TreeFingerprint":
        """Snapshot ``root``'s tree, or an explicit subset of processes.

        ``processes_subset`` supports rolling updates, whose rollback
        verifier checkpoints one quiesced worker batch at a time.
        ``include_refcounts=False`` drops the per-fd refcount component:
        batches captured mid-pipeline see shared kernel objects whose
        refcounts are legitimately elevated by the live new tree's
        inherited references (released again on rollback), so comparing
        them would flag phantom divergence.  Memory CRCs, fd presence,
        allocator and listener state are always compared.
        """
        processes: Dict[Tuple[int, str], Tuple] = {}
        subset = processes_subset if processes_subset is not None else root.tree()
        for process in subset:
            space = process.space
            mem = tuple(
                (
                    m.name,
                    m.base,
                    m.size,
                    zlib.crc32(space.view(m.base, m.size)),
                )
                for m in sorted(space.mappings(), key=lambda m: m.base)
            )
            fds = tuple(
                (
                    fd,
                    getattr(obj, "kind", "?"),
                    getattr(obj, "refcount", None) if include_refcounts else None,
                    bool(getattr(obj, "closed", False)),
                )
                for fd, obj in process.fdtable.items()
            )
            heap = process.heap
            allocator = (
                heap.live_chunk_count(),
                heap.live_bytes(),
                heap._free.total_free(),
                len(heap.reserved_ranges()),
            )
            processes[(process.pid, process.name)] = (mem, fds, allocator)
        listeners = tuple(
            sorted(
                (port, listener.sock_id, listener.closed)
                for port, listener in kernel.net._listeners.items()
            )
        )
        return cls(processes, listeners)

    def diff(self, other: "TreeFingerprint") -> List[str]:
        """Human-readable mismatches between two fingerprints."""
        problems: List[str] = []
        for key in self.processes.keys() - other.processes.keys():
            problems.append(f"process {key} disappeared")
        for key in other.processes.keys() - self.processes.keys():
            problems.append(f"process {key} appeared")
        for key in self.processes.keys() & other.processes.keys():
            before_mem, before_fds, before_alloc = self.processes[key]
            after_mem, after_fds, after_alloc = other.processes[key]
            if before_mem != after_mem:
                changed = [
                    b[0]
                    for b, a in zip(before_mem, after_mem)
                    if b != a
                ] or ["<mapping list changed>"]
                problems.append(
                    f"process {key}: memory changed in {', '.join(changed)}"
                )
            if before_fds != after_fds:
                problems.append(f"process {key}: fd table changed")
            if before_alloc != after_alloc:
                problems.append(
                    f"process {key}: allocator state changed "
                    f"({before_alloc} -> {after_alloc})"
                )
        if self.listeners != other.listeners:
            problems.append(
                f"listener table changed ({self.listeners} -> {other.listeners})"
            )
        return problems

    def matches(self, other: "TreeFingerprint") -> bool:
        return not self.diff(other)

    def to_dict(self) -> Dict[str, Any]:
        """Exact JSON serialization (lossless, unlike ``summary()``).

        The checkpoint image embeds this as its integrity header; the
        restorer round-trips it through ``from_dict`` and compares with
        ``matches()`` against a live capture, so the encoding must
        preserve every tuple component bit for bit.
        """
        processes = {}
        for (pid, name), (mem, fds, allocator) in sorted(self.processes.items()):
            processes[f"{pid}|{name}"] = {
                "mem": [list(entry) for entry in mem],
                "fds": [list(entry) for entry in fds],
                "allocator": list(allocator),
            }
        return {
            "processes": processes,
            "listeners": [list(entry) for entry in self.listeners],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TreeFingerprint":
        """Rebuild the exact tuple structures ``capture()`` produces."""
        processes: Dict[Tuple[int, str], Tuple] = {}
        for key, record in payload["processes"].items():
            pid_text, _, name = key.partition("|")
            mem = tuple(
                (entry[0], entry[1], entry[2], entry[3])
                for entry in record["mem"]
            )
            fds = tuple(
                (entry[0], entry[1], entry[2], bool(entry[3]))
                for entry in record["fds"]
            )
            allocator = tuple(record["allocator"])
            processes[(int(pid_text), name)] = (mem, fds, allocator)
        listeners = tuple(
            sorted((entry[0], entry[1], bool(entry[2]))
                   for entry in payload["listeners"])
        )
        return cls(processes, listeners)

    def summary(self) -> Dict[str, Any]:
        """A compact, JSON-safe digest for the black-box artifact."""
        processes = {}
        for (pid, name), (mem, fds, allocator) in sorted(self.processes.items()):
            processes[f"{pid}:{name}"] = {
                "mappings": len(mem),
                "mapped_bytes": sum(m[2] for m in mem),
                "fds": len(fds),
                "allocator": list(allocator),
            }
        return {
            "processes": processes,
            "listeners": [list(entry) for entry in self.listeners],
        }
