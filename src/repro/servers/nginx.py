"""Simulated nginx: rigorously event-driven master/worker web server.

Captures the properties the paper attributes to nginx:

* **Purely event-driven**: one persistent quiescent point per long-lived
  thread class (master's ``wait_child``, worker's ``epoll_wait``); no
  volatile quiescent points (Table 1: Per=2, Vol=0).
* **Custom allocators**: configuration and per-request state live in an
  nginx-style *region* (cycle pool) and connection slots in a *slab* —
  uninstrumented by default, so the objects are opaque to precise tracing
  and generate likely pointers (Table 2); building with
  ``instrument_regions`` (the ``nginx_reg`` configuration) tags region
  allocations instead.
* **Pointer encoding**: a global stores a heap pointer with metadata in
  its two least-significant bits — the real-world idiom that required a
  22-LOC annotation in the paper (handled by an object handler in
  ``servers.updates``).

Protocol: ``GET <path>`` returns the simulated file's contents;
``STATS`` returns the request counter; connections are keep-alive.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SimError
from repro.kernel.process import sim_function
from repro.runtime.program import GlobalVar, Program
from repro.servers.common import PORT_NGINX, parse_command
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    FuncType,
    INT32,
    INT64,
    PointerType,
    StructType,
    UINT64,
)

WORKER_CONNECTIONS = 64


def make_types(version: int) -> Dict[str, object]:
    cycle_fields = [
        ("listen_fd", INT32),
        ("epoll_fd", INT32),
        ("worker_pid", INT32),
        ("connection_count", INT32),
        ("doc_root", PointerType(None, name="char*")),
    ]
    if version >= 3:
        cycle_fields.append(("keepalive_timeout", INT32))
    ngx_cycle_t = StructType("ngx_cycle_t", cycle_fields)
    conn_fields = [
        ("fd", INT32),
        ("requests", INT32),
        ("log", PointerType(None, name="char*")),
        ("buffer", PointerType(None, name="void*")),
    ]
    if version >= 7:
        conn_fields.append(("bytes_sent", INT64))
    ngx_connection_t = StructType("ngx_connection_t", conn_fields)
    stats_fields = [("requests", INT64), ("connections", INT64)]
    if version >= 12:
        stats_fields.append(("errors", INT64))
    ngx_stats_t = StructType("ngx_stats_t", stats_fields)
    return {
        "ngx_cycle_t": ngx_cycle_t,
        "ngx_connection_t": ngx_connection_t,
        "ngx_stats_t": ngx_stats_t,
    }


def make_globals(types: Dict[str, object]) -> list:
    return [
        GlobalVar("ngx_cycle", PointerType(types["ngx_cycle_t"], name="ngx_cycle_t*")),
        GlobalVar("ngx_stats", types["ngx_stats_t"]),
        # The pointer-encoding idiom: a pointer stored as an integer with
        # tag bits — to precise tracing this is just a pointer-sized int.
        GlobalVar("ngx_encoded_conf", UINT64),
        GlobalVar("ngx_banner", ArrayType(CHAR, 32), init=b"nginx-sim"),
        # Root pointers into the (custom-allocated) region memory: this is
        # what makes pool state reachable to GC-style tracing.
        GlobalVar("ngx_cycle_pool", PointerType(None, name="void*")),
        GlobalVar("ngx_conn_pool", PointerType(None, name="void*")),
        GlobalVar("ngx_conn_slots", ArrayType(INT32, WORKER_CONNECTIONS), init=[-1] * WORKER_CONNECTIONS),
        # Module dispatch pointer (nginx's handler-phase pointers): a code
        # pointer remapped by function symbol across versions.
        GlobalVar("ngx_request_handler", PointerType(FuncType("handler"), name="handler*")),
    ]


def _make_main(version: int, types: Dict[str, object], worker_processes: int = 1):
    ngx_cycle_t = types["ngx_cycle_t"]
    ngx_connection_t = types["ngx_connection_t"]
    ngx_stats_t = types["ngx_stats_t"]
    multi_worker = worker_processes > 1

    @sim_function
    def ngx_serve_request(sys, conn_fd, conn_addr, region):
        crt = sys.process.crt
        data = yield from sys.recv(conn_fd)
        if not data:
            return False
        words = parse_command(data)
        crt.set(conn_addr, ngx_connection_t, "requests",
                crt.get(conn_addr, ngx_connection_t, "requests") + 1)
        if crt.gget("ngx_request_handler") == 0:
            crt.gset("ngx_request_handler", crt.func_addr("ngx_serve_request"))
        stats_addr = crt.global_addr("ngx_stats")
        crt.set(stats_addr, ngx_stats_t, "requests",
                crt.get(stats_addr, ngx_stats_t, "requests") + 1)
        if not words:
            yield from sys.send(conn_fd, b"400 empty\n")
            return True
        if words[0] == "GET":
            path = words[1] if len(words) > 1 else "/index.html"
            cycle = crt.gget("ngx_cycle")
            doc_root = crt.read_cstr(crt.get(cycle, ngx_cycle_t, "doc_root"))
            full = doc_root + path
            info = yield from sys.stat(full)
            if info is None:
                yield from sys.send(conn_fd, b"404 not found\n")
                return True
            fd = yield from sys.open(full)
            body = yield from sys.read(fd, info["size"])
            yield from sys.close(fd)
            # nginx is pool-allocation-heavy per request: header entries,
            # buffer chain links, and the response buffer all come from a
            # request pool that dies with the request (this is what makes
            # the instrumented nginx_reg configuration the Table-3
            # outlier).
            request_region = crt.region_create(block_size=8192)
            for _ in range(10):
                crt.region_alloc_raw(request_region, 48)  # header/chain links
            buf = crt.region_alloc_raw(request_region, max(len(body) + 32, 64))
            header = f"200 {len(body)}\n".encode()
            sys.process.space.write_bytes(buf, header + body[: 4096 - len(header)])
            yield from sys.cpu(len(body) * 2)  # body processing cost
            yield from sys.send(conn_fd, header + body)
            crt.region_destroy(request_region)
            return True
        if words[0] == "STATS":
            total = crt.get(stats_addr, ngx_stats_t, "requests")
            yield from sys.send(conn_fd, f"stats {total} v{version}\n".encode())
            return True
        yield from sys.send(conn_fd, b"400 bad request\n")
        return True

    @sim_function
    def ngx_worker_cycle(sys, listen_fd, epoll_fd):
        crt = sys.process.crt
        if epoll_fd is None:
            # Multi-worker mode: each worker owns a private epoll (the
            # real nginx idiom), so sibling workers never share one
            # readiness queue; the shared listener is registered in each.
            epoll_fd = yield from sys.epoll_create()
            yield from sys.epoll_ctl(epoll_fd, "add", listen_fd)
        region = crt.region_create()
        crt.gset("ngx_conn_pool", region.first_block_base)
        slab = crt.slab_create()
        connections = {}  # fd -> connection object address (slab slot)
        while True:
            sys.loop_iter("worker")
            ready = yield from sys.epoll_wait(epoll_fd)
            if not isinstance(ready, list):
                continue
            for fd in ready:
                if fd == listen_fd:
                    if multi_worker:
                        # Thundering herd: every worker's epoll reports the
                        # shared listener; a bounded accept lets the losers
                        # return to their event loop.
                        conn_fd = yield from sys.accept(
                            listen_fd, timeout_ns=100_000
                        )
                        if not isinstance(conn_fd, int):
                            continue
                    else:
                        conn_fd = yield from sys.accept(listen_fd)
                    yield from sys.epoll_ctl(epoll_fd, "add", conn_fd)
                    conn = crt.region_alloc_typed(sys.thread, region, ngx_connection_t)
                    crt.set(conn, ngx_connection_t, "fd", conn_fd)
                    crt.set(conn, ngx_connection_t, "log", crt.global_addr("ngx_banner"))
                    # Per-connection read buffer from the *slab* allocator:
                    # never instrumented (the paper's prototype does not
                    # support slabs), so these stay conservative even in
                    # the nginx_reg configuration.
                    read_buf = slab.alloc(128)
                    crt.set(conn, ngx_connection_t, "buffer", read_buf)
                    sys.process.space.write_word(read_buf, conn)
                    sys.process.space.write_word(read_buf + 8, crt.global_addr("ngx_banner"))
                    # Bulk per-connection I/O buffer: live heap state that
                    # grows transfer time with the connection count (Fig 3).
                    bulk = crt.region_alloc_raw(region, 4 * 1024)
                    sys.process.space.write_bytes(bulk, b"\x5a" * 1024)
                    connections[conn_fd] = conn
                    slots = crt.gget("ngx_conn_slots")
                    for index, slot in enumerate(slots):
                        if slot < 0:
                            slots[index] = conn_fd
                            break
                    crt.gset("ngx_conn_slots", slots)
                    stats_addr = crt.global_addr("ngx_stats")
                    crt.set(stats_addr, ngx_stats_t, "connections",
                            crt.get(stats_addr, ngx_stats_t, "connections") + 1)
                    continue
                conn = connections.get(fd)
                if conn is None:
                    conn = crt.region_alloc_typed(sys.thread, region, ngx_connection_t)
                    crt.set(conn, ngx_connection_t, "fd", fd)
                    connections[fd] = conn
                try:
                    keep = yield from ngx_serve_request(sys, fd, conn, region)
                except SimError:
                    keep = False  # peer vanished mid-request (EPIPE)
                if not keep:
                    yield from sys.epoll_ctl(epoll_fd, "del", fd)
                    yield from sys.close(fd)
                    connections.pop(fd, None)
                    slots = crt.gget("ngx_conn_slots")
                    crt.gset("ngx_conn_slots", [(-1 if s == fd else s) for s in slots])

    @sim_function
    def ngx_worker_main(sys, listen_fd, epoll_fd):
        yield from ngx_worker_cycle(sys, listen_fd, epoll_fd)

    @sim_function
    def ngx_master_cycle(sys):
        while True:
            sys.loop_iter("master")
            yield from sys.wait_child()

    @sim_function
    def ngx_init_cycle(sys):
        crt = sys.process.crt
        cfg_fd = yield from sys.open("/etc/nginx.conf")
        raw = yield from sys.read(cfg_fd)
        yield from sys.close(cfg_fd)
        conf = dict(
            line.split("=", 1) for line in raw.decode().splitlines() if "=" in line
        )
        port = int(conf.get("port", PORT_NGINX))
        listen_fd = yield from sys.socket()
        yield from sys.bind(listen_fd, port)
        yield from sys.listen(listen_fd, 512)
        epoll_fd = yield from sys.epoll_create()
        yield from sys.epoll_ctl(epoll_fd, "add", listen_fd)
        # The cycle structure lives in a region (the cycle pool):
        # uninstrumented by default -> opaque to precise tracing.
        region = crt.region_create()
        cycle = crt.region_alloc_typed(sys.thread, region, ngx_cycle_t)
        crt.gset("ngx_cycle_pool", region.first_block_base)
        crt.set(cycle, ngx_cycle_t, "listen_fd", listen_fd)
        crt.set(cycle, ngx_cycle_t, "epoll_fd", epoll_fd)
        doc_root = crt.strdup(sys.thread, conf.get("root", "/srv/www"))
        crt.set(cycle, ngx_cycle_t, "doc_root", doc_root)
        if version >= 3:
            crt.set(cycle, ngx_cycle_t, "keepalive_timeout", int(conf.get("keepalive", 65)))
        # Startup configuration tables: the bulk state that mutable
        # reinitialization re-creates for free (clean at update time, so
        # dirty tracking skips it -- the paper's 68-86% reduction).
        for entry_index in range(256):
            entry = crt.region_alloc_raw(region, 512)
            crt.write_cstr(entry, f"locale-{entry_index}:" + "x" * 400)
        crt.gset("ngx_cycle", cycle)
        # Pointer-encoding idiom: conf pointer | 0b01 in a uint64 global.
        crt.gset("ngx_encoded_conf", cycle | 0x1)
        return listen_fd, epoll_fd, cycle

    @sim_function
    def ngx_daemonize(sys, worker_body):
        """fork-and-exit daemonization (the short-lived thread class)."""
        pid = yield from sys.fork(worker_body, name="nginx-daemon")
        return pid

    @sim_function
    def nginx_main(sys):
        @sim_function
        def daemon_body(sys2):
            crt = sys2.process.crt
            listen_fd, epoll_fd, cycle = yield from ngx_init_cycle(sys2)
            if multi_worker:
                worker_pid = 0
                for worker_index in range(worker_processes):
                    worker_pid = yield from sys2.fork(
                        ngx_worker_main,
                        args=(listen_fd, None),
                        name=f"nginx-worker-{worker_index}",
                    )
            else:
                worker_pid = yield from sys2.fork(
                    ngx_worker_main, args=(listen_fd, epoll_fd), name="nginx-worker"
                )
            crt.set(cycle, ngx_cycle_t, "worker_pid", worker_pid)
            yield from ngx_master_cycle(sys2)

        yield from ngx_daemonize(sys, daemon_body)
        yield from sys.exit(0)

    return nginx_main


def _enumerate_workers(root) -> list:
    """Rolling-update hook: worker processes in fork order, master excluded."""
    return [p for p in root.tree() if p.name.startswith("nginx-worker")]


def make_program(
    version: int = 1,
    instrument_regions: bool = False,
    worker_processes: int = 1,
) -> Program:
    types = make_types(version)
    program = Program(
        name="nginx",
        version=str(version),
        globals_=make_globals(types),
        main=_make_main(version, types, worker_processes=worker_processes),
        types=types,
        quiescent_points={
            ("ngx_worker_cycle", "epoll_wait"),
            ("ngx_master_cycle", "wait_child"),
        },
        metadata={
            "port": PORT_NGINX,
            "instrument_regions": instrument_regions,
            "worker_processes": worker_processes,
            "enumerate_workers": _enumerate_workers,
        },
        functions=[
            "ngx_init_cycle", "ngx_master_cycle", "ngx_worker_cycle",
            "ngx_serve_request", "nginx_main",
        ],
    )
    # "nginx required 22 LOC to annotate a number of global pointers using
    # special data encoding — storing metadata in the 2 least significant
    # bits" (paper §8): decode the tagged cycle pointer precisely.
    program.annotations.MCR_ANNOTATE_ENCODED_POINTER("ngx_encoded_conf", tag_bits=0x3, loc=22)
    return program


def setup_world(kernel) -> None:
    kernel.fs.create("/etc/nginx.conf", b"port=8081\nroot=/srv/www\nkeepalive=65\n")
    kernel.fs.create("/srv/www/index.html", b"<html>hello nginx</html>")
    kernel.fs.create("/srv/www/big.bin", b"B" * 4096)
    kernel.fs.create("/srv/www/file1k.bin", b"K" * 1024)
