"""Simulated server programs (the paper's evaluation subjects).

Each module exports ``make_program(version)`` returning a ``Program`` for
that release, mirroring the structural properties the paper calls out:

* ``simple``   — the Listing-1 event-driven example server.
* ``httpd``    — Apache httpd: master + workers, worker threads, nested
  pools, "detects own running instance" behaviour.
* ``nginx``    — purely event-driven, slab + region allocators, low-bit
  pointer encoding.
* ``vsftpd``   — per-connection session processes (FTP).
* ``opensshd`` — per-connection session processes + exec'd helper (SSH).

``updates`` defines each program's update series (the Table-1 inputs).
"""

import importlib

__all__ = ["httpd", "memcache", "nginx", "opensshd", "simple", "vsftpd"]


def __getattr__(name):
    if name in __all__:
        return importlib.import_module(f"repro.servers.{name}")
    raise AttributeError(f"module 'repro.servers' has no attribute {name!r}")
