"""Simulated vsftpd: per-connection session processes (FTP).

Captures vsftpd's properties from the paper:

* **One persistent quiescent point** — the master's ``accept`` loop — and
  **volatile** quiescent points in session processes forked per
  connection (Table 1: Per=1, the rest volatile).  Restoring sessions in
  the new version needs the ``post_startup`` reinit handler that
  ``servers.updates`` registers (the paper's 82-LOC extension).
* **Fully instrumented allocation** — every session object is a typed
  ``malloc``, so mutable tracing is almost entirely precise; the few
  likely pointers come from one deliberate type-unsafe idiom (a command
  scratch buffer caching a pointer), matching the paper's observation
  that a handful of likely pointers survive even full instrumentation.

FTP-ish protocol (newline-framed): ``USER <n>``, ``PASS <p>``,
``RETR <path>``, ``STAT``, ``QUIT``.
"""

from __future__ import annotations

import struct as _struct
from typing import Dict

from repro.errors import SimError
from repro.kernel.process import sim_function
from repro.runtime.program import GlobalVar, Program
from repro.servers.common import PORT_VSFTPD, parse_command
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    INT32,
    INT64,
    PointerType,
    StructType,
)

MAX_SESSIONS = 128


def make_types(version: int) -> Dict[str, object]:
    session_fields = [
        ("control_fd", INT32),
        ("logged_in", INT32),
        ("bytes_sent", INT64),
        ("username", ArrayType(CHAR, 16)),
    ]
    if version >= 3:
        session_fields.append(("failed_logins", INT32))
    if version >= 5:
        session_fields.append(("idle_seconds", INT64))
    vsf_session_t = StructType("vsf_session_t", session_fields)
    slot_fields = [("pid", INT32), ("control_fd", INT32), ("active", INT32)]
    vsf_slot_t = StructType("vsf_slot_t", slot_fields)
    vsf_conf_entry_t = StructType(
        "vsf_conf_entry_t",
        [("next", PointerType(None)), ("text", ArrayType(CHAR, 500))],
    )
    return {
        "vsf_session_t": vsf_session_t,
        "vsf_slot_t": vsf_slot_t,
        "vsf_conf_entry_t": vsf_conf_entry_t,
    }


def make_globals(types: Dict[str, object]) -> list:
    return [
        GlobalVar("vsf_listen_fd", INT32, init=-1),
        GlobalVar("vsf_session_count", INT64),
        GlobalVar("vsf_slots", ArrayType(types["vsf_slot_t"], MAX_SESSIONS)),
        # Per-session-process global: pointer to this process's session.
        GlobalVar("vsf_session", PointerType(types["vsf_session_t"], name="vsf_session_t*")),
        GlobalVar("vsf_banner", ArrayType(CHAR, 32), init=b"220 vsftpd-sim"),
        # The type-unsafe idiom: a scratch buffer that caches a pointer.
        GlobalVar("vsf_cmd_scratch", ArrayType(CHAR, 24)),
        # Unannotated idiom: caches the last transfer path (a heap string)
        # in raw chars -> a residual likely pointer even at full
        # instrumentation, as the paper reports for vsftpd.
        GlobalVar("vsf_transfer_cache", ArrayType(CHAR, 16)),
        # Head of the startup configuration chain (heap entries).
        GlobalVar("vsf_conf_chain", PointerType(None, name="void*")),
    ]


def _make_main(version: int, types: Dict[str, object]):
    vsf_session_t = types["vsf_session_t"]
    vsf_slot_t = types["vsf_slot_t"]

    @sim_function
    def vsf_handle_command(sys, control_fd, line):
        crt = sys.process.crt
        session = crt.gget("vsf_session")
        words = parse_command(line)
        if not words:
            yield from sys.send(control_fd, b"500 empty\n")
            return True
        command = words[0].upper()
        if command == "USER":
            crt.write_cstr(
                crt.field_addr(session, vsf_session_t, "username"),
                (words[1] if len(words) > 1 else "")[:15],
            )
            yield from sys.send(control_fd, b"331 need password\n")
            return True
        if command == "PASS":
            password_ok = len(words) > 1 and words[1] != "wrong"
            if password_ok:
                crt.set(session, vsf_session_t, "logged_in", 1)
                yield from sys.send(control_fd, b"230 logged in\n")
            else:
                if version >= 3:
                    crt.set(
                        session, vsf_session_t, "failed_logins",
                        crt.get(session, vsf_session_t, "failed_logins") + 1,
                    )
                yield from sys.send(control_fd, b"530 login incorrect\n")
            return True
        if command == "RETR":
            if not crt.get(session, vsf_session_t, "logged_in"):
                yield from sys.send(control_fd, b"530 not logged in\n")
                return True
            path = words[1] if len(words) > 1 else ""
            info = yield from sys.stat(path)
            if info is None:
                yield from sys.send(control_fd, b"550 no such file\n")
                return True
            fd = yield from sys.open(path)
            body = yield from sys.read(fd, info["size"])
            yield from sys.close(fd)
            yield from sys.cpu(len(body) * 2)
            yield from sys.send(
                control_fd,
                f"150 {len(body)}\n".encode() + body + b"\n226 transfer complete\n",
            )
            crt.set(
                session, vsf_session_t, "bytes_sent",
                crt.get(session, vsf_session_t, "bytes_sent") + len(body),
            )
            # Type-unsafe idiom: cache the session pointer in the char
            # scratch buffer (likely pointer even under full tags).
            crt.gset("vsf_cmd_scratch", _struct.pack("<Q", session) + b"retr")
            path_str = crt.strdup(sys.thread, path)
            crt.gset("vsf_transfer_cache", _struct.pack("<Q", path_str))
            return True
        if command == "STAT":
            name = crt.read_cstr(crt.field_addr(session, vsf_session_t, "username"))
            sent = crt.get(session, vsf_session_t, "bytes_sent")
            yield from sys.send(
                control_fd, f"211 user={name} sent={sent} v{version}\n".encode()
            )
            return True
        if command == "QUIT":
            yield from sys.send(control_fd, b"221 goodbye\n")
            return False
        yield from sys.send(control_fd, b"500 unknown\n")
        return True

    @sim_function
    def vsf_session_loop(sys, control_fd):
        while True:
            sys.loop_iter("session")
            line = yield from sys.recv(control_fd)
            if not line:
                break
            try:
                keep = yield from vsf_handle_command(sys, control_fd, line)
            except SimError:
                keep = False  # peer vanished mid-command (EPIPE)
            if not keep:
                break
        yield from sys.close(control_fd)
        yield from sys.exit(0)

    @sim_function
    def vsf_session_main(sys, control_fd):
        crt = sys.process.crt
        session = crt.malloc_typed(sys.thread, vsf_session_t)
        crt.set(session, vsf_session_t, "control_fd", control_fd)
        crt.gset("vsf_session", session)
        transfer_buf = crt.malloc(4 * 1024, sys.thread)
        sys.process.space.write_bytes(transfer_buf, b"\x42" * 1024)
        sys.process.space.write_bytes(
            crt.global_addr("vsf_cmd_scratch") + 8,
            transfer_buf.to_bytes(8, "little"),
        )
        banner = crt.read_cstr(crt.global_addr("vsf_banner"))
        yield from sys.send(control_fd, (banner + "\n").encode())
        yield from vsf_session_loop(sys, control_fd)

    @sim_function
    def vsf_session_restore(sys, control_fd):
        """Entry point for sessions recreated after a live update.

        No banner, no allocation: the session object and the per-process
        ``vsf_session`` global arrive via state transfer; this body only
        re-enters the (quiescent-point) command loop.
        """
        yield from vsf_session_loop(sys, control_fd)

    @sim_function
    def vsf_master_loop(sys, listen_fd):
        crt = sys.process.crt
        while True:
            sys.loop_iter("master")
            conn = yield from sys.accept(listen_fd)
            pid = yield from sys.fork(vsf_session_main, args=(conn,), name="vsftpd-session")
            count = crt.gget("vsf_session_count")
            slot_base = crt.global_addr("vsf_slots") + (int(count) % MAX_SESSIONS) * vsf_slot_t.size
            crt.set(slot_base, vsf_slot_t, "pid", pid)
            crt.set(slot_base, vsf_slot_t, "control_fd", conn)
            crt.set(slot_base, vsf_slot_t, "active", 1)
            crt.gset("vsf_session_count", count + 1)
            yield from sys.close(conn)  # session process owns it now

    @sim_function
    def vsftpd_main(sys):
        crt = sys.process.crt
        cfg_fd = yield from sys.open("/etc/vsftpd.conf")
        raw = yield from sys.read(cfg_fd)
        yield from sys.close(cfg_fd)
        port = int(raw.decode().strip() or PORT_VSFTPD)
        listen_fd = yield from sys.socket()
        yield from sys.bind(listen_fd, port)
        yield from sys.listen(listen_fd, 128)
        crt.gset("vsf_listen_fd", listen_fd)
        conf_entry_t = types["vsf_conf_entry_t"]
        previous = 0
        for entry_index in range(256):
            entry = crt.malloc_typed(sys.thread, conf_entry_t)
            crt.set(entry, conf_entry_t, "next", previous)
            crt.write_cstr(
                crt.field_addr(entry, conf_entry_t, "text"),
                f"ftpconf-{entry_index}:" + "y" * 400,
            )
            previous = entry
        crt.gset("vsf_conf_chain", previous)
        yield from vsf_master_loop(sys, listen_fd)

    return vsftpd_main, vsf_session_restore


def make_program(version: int = 1) -> Program:
    types = make_types(version)
    main, session_restore = _make_main(version, types)
    program = Program(
        name="vsftpd",
        version=str(version),
        globals_=make_globals(types),
        main=main,
        types=types,
        quiescent_points={
            ("vsf_master_loop", "accept"),
            ("vsf_session_loop", "recv"),
        },
        metadata={
            "port": PORT_VSFTPD,
            # Rolling-update hook: per-connection session children.  New
            # sessions born mid-update land in the remainder batch; rolling
            # suits stable worker pools better than fork-per-connection.
            "enumerate_workers": lambda root: [
                p for p in root.tree() if p.name.startswith("vsftpd-session")
            ],
        },
    )
    # Exported for the update machinery (the volatile-QP restore handler).
    program.metadata["session_restore"] = session_restore
    # Extending mutable reinitialization to the volatile (per-session)
    # quiescent points: the paper reports 82 LOC for vsftpd.
    program.annotations.MCR_ADD_REINIT_HANDLER(
        restore_sessions_handler, stage="post_startup", loc=76
    )
    # The command scratch buffer caches a session pointer in raw chars;
    # annotate it so session-type changes stay transformable.
    program.annotations.MCR_ANNOTATE_ENCODED_POINTER("vsf_cmd_scratch", tag_bits=0x0, loc=6)
    return program


def restore_sessions_handler(context) -> None:
    """The vsftpd ``post_startup`` reinit handler (paper: 82 LOC).

    For every old session process with no new-version counterpart, fork a
    counterpart running the restore entry point on the same control fd.
    State transfer then refills its session structure.
    """
    program = context.new_session.program
    session_restore = program.metadata["session_restore"]
    for old_process in context.missing_counterparts():
        control_fd = None
        for fd, obj in old_process.fdtable.items():
            if obj.kind == "stream":
                control_fd = fd
                break
        if control_fd is None:
            continue
        context.respawn(old_process, session_restore, args=(control_fd,))


def setup_world(kernel) -> None:
    kernel.fs.create("/etc/vsftpd.conf", str(PORT_VSFTPD).encode())
    kernel.fs.create("/pub/file1m.bin", b"M" * 8192)  # scaled-down 1 MB file
    kernel.fs.create("/pub/readme.txt", b"welcome to vsftpd-sim\n")
