"""A memcached-style in-memory cache: the semantic-update showcase.

Beyond the four paper subjects, this server exercises the state shape MCR
is hardest on: a hash table whose buckets are an array of pointers into
heap-allocated entry chains — deep, cyclic-free pointer graphs that must
be relocated and type-transformed wholesale.

Its update line contains the paper's "complex semantic state
transformation" case (§3/§8): **v3 adds a per-entry integrity checksum**
that v3 code *verifies on every read*.  Mutable tracing alone would
default the new field to zero and every cached entry would verify as
corrupt; the shipped ``MCR_ADD_OBJ_HANDLER`` on the entry *type* derives
the checksum during transfer — the 793-LOC-bucket kind of user code.

Protocol: ``SET <k> <v>``, ``GET <k>``, ``DEL <k>``, ``NSTATS``.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SimError
from repro.kernel.process import sim_function
from repro.runtime.program import GlobalVar, Program
from repro.servers.common import parse_command
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    INT32,
    INT64,
    PointerType,
    StructType,
)

PORT_MEMCACHE = 11211
BUCKETS = 8
KEY_SIZE = 16
VALUE_SIZE = 32


def key_hash(key: str) -> int:
    return sum(key.encode()) % BUCKETS


def entry_checksum(key: str, value: str) -> int:
    return (sum(key.encode()) * 31 + sum(value.encode())) & 0x7FFFFFFF


def make_types(version: int) -> Dict[str, object]:
    entry_fields = [
        ("key", ArrayType(CHAR, KEY_SIZE)),
        ("value", ArrayType(CHAR, VALUE_SIZE)),
    ]
    if version >= 3:
        entry_fields.append(("checksum", INT32))
    entry_fields.append(("next", PointerType(None, name="mc_entry*")))
    mc_entry_t = StructType("mc_entry_t", entry_fields)
    return {"mc_entry_t": mc_entry_t}


def make_globals(types: Dict[str, object]) -> list:
    entry_ptr = PointerType(types["mc_entry_t"], name="mc_entry_t*")
    return [
        GlobalVar("mc_buckets", ArrayType(entry_ptr, BUCKETS)),
        GlobalVar("mc_count", INT64),
        GlobalVar("mc_hits", INT64),
        GlobalVar("mc_misses", INT64),
    ]


def _make_main(version: int, types: Dict[str, object]):
    mc_entry_t = types["mc_entry_t"]

    @sim_function
    def mc_find(sys, key):
        crt = sys.process.crt
        bucket_addr = crt.global_addr("mc_buckets") + key_hash(key) * 8
        node = sys.process.space.read_word(bucket_addr)
        prev = 0
        while node:
            if crt.read_cstr(crt.field_addr(node, mc_entry_t, "key")) == key:
                return node, prev, bucket_addr
            prev = node
            node = crt.get(node, mc_entry_t, "next")
        return 0, prev, bucket_addr
        yield  # pragma: no cover - generator marker

    @sim_function
    def mc_handle(sys, conn_fd, line):
        crt = sys.process.crt
        space = sys.process.space
        words = parse_command(line)
        if not words:
            yield from sys.send(conn_fd, b"ERROR empty\n")
            return True
        command = words[0].upper()
        if command == "SET" and len(words) >= 3:
            key, value = words[1][: KEY_SIZE - 1], words[2][: VALUE_SIZE - 1]
            node, _prev, bucket_addr = yield from mc_find(sys, key)
            if node == 0:
                node = crt.malloc_typed(sys.thread, mc_entry_t)
                crt.write_cstr(crt.field_addr(node, mc_entry_t, "key"), key)
                crt.set(node, mc_entry_t, "next", space.read_word(bucket_addr))
                space.write_word(bucket_addr, node)
                crt.gset("mc_count", crt.gget("mc_count") + 1)
            crt.write_cstr(crt.field_addr(node, mc_entry_t, "value"), value)
            if version >= 3:
                crt.set(node, mc_entry_t, "checksum", entry_checksum(key, value))
            yield from sys.send(conn_fd, b"STORED\n")
            return True
        if command == "GET" and len(words) >= 2:
            key = words[1][: KEY_SIZE - 1]
            node, _prev, _bucket = yield from mc_find(sys, key)
            if node == 0:
                crt.gset("mc_misses", crt.gget("mc_misses") + 1)
                yield from sys.send(conn_fd, b"MISS\n")
                return True
            value = crt.read_cstr(crt.field_addr(node, mc_entry_t, "value"))
            if version >= 3:
                stored = crt.get(node, mc_entry_t, "checksum")
                if stored != entry_checksum(key, value):
                    yield from sys.send(conn_fd, b"CORRUPT\n")
                    return True
            crt.gset("mc_hits", crt.gget("mc_hits") + 1)
            yield from sys.send(conn_fd, f"VALUE {value}\n".encode())
            return True
        if command == "DEL" and len(words) >= 2:
            key = words[1][: KEY_SIZE - 1]
            node, prev, bucket_addr = yield from mc_find(sys, key)
            if node == 0:
                yield from sys.send(conn_fd, b"NOT_FOUND\n")
                return True
            following = crt.get(node, mc_entry_t, "next")
            if prev:
                crt.set(prev, mc_entry_t, "next", following)
            else:
                space.write_word(bucket_addr, following)
            crt.free(node)
            crt.gset("mc_count", crt.gget("mc_count") - 1)
            yield from sys.send(conn_fd, b"DELETED\n")
            return True
        if command == "NSTATS":
            yield from sys.send(
                conn_fd,
                f"STATS items={crt.gget('mc_count')} hits={crt.gget('mc_hits')} "
                f"misses={crt.gget('mc_misses')} v{version}\n".encode(),
            )
            return True
        yield from sys.send(conn_fd, b"ERROR unknown\n")
        return True

    @sim_function
    def mc_event_loop(sys, listen_fd, epfd):
        while True:
            sys.loop_iter("main")
            ready = yield from sys.epoll_wait(epfd)
            if not isinstance(ready, list):
                continue
            for fd in ready:
                if fd == listen_fd:
                    conn = yield from sys.accept(listen_fd)
                    yield from sys.epoll_ctl(epfd, "add", conn)
                    continue
                data = yield from sys.recv(fd)
                if not data:
                    yield from sys.epoll_ctl(epfd, "del", fd)
                    yield from sys.close(fd)
                    continue
                try:
                    yield from mc_handle(sys, fd, data)
                except SimError:
                    yield from sys.epoll_ctl(epfd, "del", fd)

    @sim_function
    def memcache_main(sys):
        listen_fd = yield from sys.socket()
        yield from sys.bind(listen_fd, PORT_MEMCACHE)
        yield from sys.listen(listen_fd, 256)
        epfd = yield from sys.epoll_create()
        yield from sys.epoll_ctl(epfd, "add", listen_fd)
        yield from mc_event_loop(sys, listen_fd, epfd)

    return memcache_main


def checksum_handler(context) -> None:
    """Derive the v3 integrity checksum during transfer (semantic ST).

    Registered on the *type* ``mc_entry_t``: runs for every transferred
    entry, reading the transformed key/value and computing what v3 code
    will verify.
    """
    key = bytes(context.transformed["key"]).split(b"\x00")[0].decode()
    value = bytes(context.transformed["value"]).split(b"\x00")[0].decode()
    context.transformed["checksum"] = entry_checksum(key, value)


def make_program(version: int = 1, with_st_handler: bool = True) -> Program:
    types = make_types(version)
    program = Program(
        name="memcache",
        version=str(version),
        globals_=make_globals(types),
        main=_make_main(version, types),
        types=types,
        quiescent_points={("mc_event_loop", "epoll_wait")},
        metadata={"port": PORT_MEMCACHE},
        functions=["memcache_main", "mc_event_loop", "mc_handle", "mc_find"],
    )
    if version >= 3 and with_st_handler:
        # The paper's "complex semantic state transformations ... could
        # not be automatically remapped by MCR" bucket: 31 LOC here.
        program.annotations.MCR_ADD_OBJ_HANDLER("mc_entry_t", checksum_handler, loc=31)
    return program


def setup_world(kernel) -> None:
    return None  # no config files needed
