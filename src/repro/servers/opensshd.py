"""Simulated OpenSSH daemon: per-connection sessions + exec'd helpers.

Captures the sshd properties from the paper:

* master ``accept`` loop (the single persistent quiescent point) and
  per-connection session processes (volatile quiescent points, restored
  by a ``post_startup`` handler — 49 LOC in the paper);
* a short-lived thread class from ``exec()``-ing helper programs (the
  paper observed these during quiescence profiling);
* **shared-library state**: a ``libcrypto`` image whose RNG state is
  allocated inside the library mapping and referenced from a program
  global — the uninstrumented-library pointers of Table 2's "Lib"
  columns;
* fully instrumented allocation otherwise, with a couple of deliberate
  type-unsafe idioms (a union-typed auth blob) producing the residual
  likely pointers the paper reports even for well-behaved programs.

Protocol: ``AUTH <user> <pass>``, ``EXEC <cmd>``, ``STAT``, ``QUIT``.
"""

from __future__ import annotations

import struct as _struct
from typing import Dict

from repro.errors import SimError
from repro.kernel.process import sim_function
from repro.runtime.program import GlobalVar, Program
from repro.servers.common import PORT_SSHD, parse_command
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    INT32,
    INT64,
    PointerType,
    StructType,
    UnionType,
)


def make_types(version: int) -> Dict[str, object]:
    session_fields = [
        ("control_fd", INT32),
        ("authenticated", INT32),
        ("username", ArrayType(CHAR, 16)),
        ("exec_count", INT64),
    ]
    if version >= 3:
        session_fields.append(("auth_attempts", INT32))
    if version >= 5:
        session_fields.append(("last_command", ArrayType(CHAR, 32)))
    ssh_session_t = StructType("ssh_session_t", session_fields)
    # The type-unsafe idiom: a union that may hold a pointer or a key id.
    ssh_auth_blob_t = UnionType(
        "ssh_auth_blob_t",
        [("key_id", INT64), ("key_ptr", PointerType(None, name="void*"))],
    )
    ssh_conf_entry_t = StructType(
        "ssh_conf_entry_t",
        [("next", PointerType(None)), ("text", ArrayType(CHAR, 500))],
    )
    return {
        "ssh_session_t": ssh_session_t,
        "ssh_auth_blob_t": ssh_auth_blob_t,
        "ssh_conf_entry_t": ssh_conf_entry_t,
    }


def make_globals(types: Dict[str, object]) -> list:
    return [
        GlobalVar("sshd_listen_fd", INT32, init=-1),
        GlobalVar("sshd_session_count", INT64),
        GlobalVar("sshd_session", PointerType(types["ssh_session_t"], name="ssh_session_t*")),
        # Pointer into uninstrumented library state (libcrypto RNG).
        GlobalVar("sshd_rng_state", PointerType(None, name="void*")),
        GlobalVar("sshd_hostkey_digest", ArrayType(CHAR, 20)),
        GlobalVar("sshd_auth_blob", types["ssh_auth_blob_t"]),
        # Unannotated idioms: raw char buffers caching pointers (into the
        # library's RNG state and a heap key blob) -> residual likely
        # pointers, including the paper's program-pointers-into-lib-state.
        GlobalVar("sshd_rng_cache", ArrayType(CHAR, 8)),
        GlobalVar("sshd_kex_cache", ArrayType(CHAR, 16)),
        GlobalVar("sshd_version_banner", ArrayType(CHAR, 32), init=b"SSH-2.0-sshd-sim"),
        GlobalVar("sshd_conf_chain", PointerType(None, name="void*")),
        GlobalVar("sshd_channel_buf", PointerType(None, name="void*")),
    ]


def _make_main(version: int, types: Dict[str, object]):
    ssh_session_t = types["ssh_session_t"]
    ssh_auth_blob_t = types["ssh_auth_blob_t"]

    @sim_function
    def sshd_helper_image(sys, result_fd, command):
        """The exec'd helper program (uninstrumented, short-lived)."""
        output = f"helper-output:{command}".encode()
        yield from sys.sendmsg(result_fd, output)
        yield from sys.exit(0)

    @sim_function
    def sshd_exec_child(sys, result_fd, command):
        yield from sys.exec("ssh-helper", sshd_helper_image, args=(result_fd, command))

    @sim_function
    def ssh_handle_command(sys, control_fd, line):
        crt = sys.process.crt
        session = crt.gget("sshd_session")
        words = parse_command(line)
        if not words:
            yield from sys.send(control_fd, b"err empty\n")
            return True
        command = words[0].upper()
        if command == "AUTH":
            user = words[1] if len(words) > 1 else ""
            password = words[2] if len(words) > 2 else ""
            if version >= 3:
                crt.set(session, ssh_session_t, "auth_attempts",
                        crt.get(session, ssh_session_t, "auth_attempts") + 1)
            if password != "wrong":
                crt.set(session, ssh_session_t, "authenticated", 1)
                crt.write_cstr(
                    crt.field_addr(session, ssh_session_t, "username"), user[:15]
                )
                # Stash an opaque auth blob: a pointer hidden in a union.
                crt.gset("sshd_auth_blob", _struct.pack("<Q", session))
                key_blob = crt.strdup(sys.thread, f"kex-{user}")
                crt.gset("sshd_kex_cache", _struct.pack("<Q", key_blob))
                yield from sys.send(control_fd, b"auth-ok\n")
            else:
                yield from sys.send(control_fd, b"auth-failed\n")
            return True
        if command == "EXEC":
            if not crt.get(session, ssh_session_t, "authenticated"):
                yield from sys.send(control_fd, b"err not authenticated\n")
                return True
            shell_command = " ".join(words[1:]) or "true"
            rx, tx = yield from sys.socketpair()
            yield from sys.fork(sshd_exec_child, args=(tx, shell_command), name="sshd-exec")
            data, _fds = yield from sys.recvmsg(rx)
            yield from sys.close(rx)
            yield from sys.close(tx)
            yield from sys.wait_child()
            crt.set(session, ssh_session_t, "exec_count",
                    crt.get(session, ssh_session_t, "exec_count") + 1)
            if version >= 5:
                crt.write_cstr(
                    crt.field_addr(session, ssh_session_t, "last_command"),
                    shell_command[:31],
                )
            yield from sys.send(control_fd, data + b"\n")
            return True
        if command == "STAT":
            name = crt.read_cstr(crt.field_addr(session, ssh_session_t, "username"))
            execs = crt.get(session, ssh_session_t, "exec_count")
            yield from sys.send(
                control_fd, f"stat user={name} execs={execs} v{version}\n".encode()
            )
            return True
        if command == "QUIT":
            yield from sys.send(control_fd, b"bye\n")
            return False
        yield from sys.send(control_fd, b"err unknown\n")
        return True

    @sim_function
    def ssh_session_loop(sys, control_fd):
        while True:
            sys.loop_iter("session")
            line = yield from sys.recv(control_fd)
            if not line:
                break
            try:
                keep = yield from ssh_handle_command(sys, control_fd, line)
            except SimError:
                keep = False  # peer vanished mid-command (EPIPE)
            if not keep:
                break
        yield from sys.close(control_fd)
        yield from sys.exit(0)

    @sim_function
    def ssh_session_main(sys, control_fd):
        crt = sys.process.crt
        session = crt.malloc_typed(sys.thread, ssh_session_t)
        crt.set(session, ssh_session_t, "control_fd", control_fd)
        crt.gset("sshd_session", session)
        channel_buf = crt.malloc(4 * 1024, sys.thread)
        sys.process.space.write_bytes(channel_buf, b"\x43" * 1024)
        crt.gset("sshd_channel_buf", channel_buf)
        banner = crt.read_cstr(crt.global_addr("sshd_version_banner"))
        yield from sys.send(control_fd, (banner + "\n").encode())
        yield from ssh_session_loop(sys, control_fd)

    @sim_function
    def ssh_session_restore(sys, control_fd):
        """Post-update restore entry: straight into the quiescent loop."""
        yield from ssh_session_loop(sys, control_fd)

    @sim_function
    def sshd_master_loop(sys, listen_fd):
        crt = sys.process.crt
        while True:
            sys.loop_iter("master")
            conn = yield from sys.accept(listen_fd)
            yield from sys.fork(ssh_session_main, args=(conn,), name="sshd-session")
            crt.gset("sshd_session_count", crt.gget("sshd_session_count") + 1)
            yield from sys.close(conn)

    @sim_function
    def sshd_init(sys):
        crt = sys.process.crt
        key_fd = yield from sys.open("/etc/ssh/host_key")
        key = yield from sys.read(key_fd)
        yield from sys.close(key_fd)
        crt.gset("sshd_hostkey_digest", key[:20])
        # Initialize libcrypto: RNG state lives inside the library image,
        # referenced from a program global (uninstrumented-library state).
        libcrypto = sys.process.libs["libcrypto"]
        rng_state = libcrypto.alloc(128)
        sys.process.space.write_bytes(rng_state, key[:16].ljust(16, b"\x00"))
        crt.gset("sshd_rng_state", rng_state)
        import struct as _s
        crt.gset("sshd_rng_cache", _s.pack("<Q", rng_state))
        listen_fd = yield from sys.socket()
        yield from sys.bind(listen_fd, PORT_SSHD)
        yield from sys.listen(listen_fd, 128)
        crt.gset("sshd_listen_fd", listen_fd)
        conf_entry_t = types["ssh_conf_entry_t"]
        previous = 0
        for entry_index in range(256):
            entry = crt.malloc_typed(sys.thread, conf_entry_t)
            crt.set(entry, conf_entry_t, "next", previous)
            crt.write_cstr(
                crt.field_addr(entry, conf_entry_t, "text"),
                f"sshdconf-{entry_index}:" + "z" * 400,
            )
            previous = entry
        crt.gset("sshd_conf_chain", previous)
        return listen_fd

    @sim_function
    def sshd_main(sys):
        @sim_function
        def sshd_daemon(sys2):
            listen_fd = yield from sshd_init(sys2)
            yield from sshd_master_loop(sys2, listen_fd)

        yield from sys.fork(sshd_daemon, name="sshd-daemon")
        yield from sys.exit(0)

    return sshd_main, ssh_session_restore


def make_program(version: int = 1) -> Program:
    types = make_types(version)
    main, session_restore = _make_main(version, types)
    program = Program(
        name="opensshd",
        version=str(version),
        globals_=make_globals(types),
        main=main,
        types=types,
        libs=[("libcrypto", 64 * 1024)],
        quiescent_points={
            ("sshd_master_loop", "accept"),
            ("ssh_session_loop", "recv"),
        },
        metadata={
            "port": PORT_SSHD,
            # Rolling-update hook: per-connection session children (the
            # transient exec children are excluded; they exit on their own).
            "enumerate_workers": lambda root: [
                p for p in root.tree() if p.name.startswith("sshd-session")
            ],
        },
    )
    program.metadata["session_restore"] = session_restore
    # Volatile-QP restore handler (paper: 49 LOC for OpenSSH).
    program.annotations.MCR_ADD_REINIT_HANDLER(
        restore_sessions_handler, stage="post_startup", loc=41
    )
    # The auth blob union hides a session pointer; without this annotation
    # mutable tracing pins the session structure as nonupdatable and any
    # session-type change conflicts.
    program.annotations.MCR_ANNOTATE_ENCODED_POINTER("sshd_auth_blob", tag_bits=0x0, loc=8)
    return program


def restore_sessions_handler(context) -> None:
    program = context.new_session.program
    session_restore = program.metadata["session_restore"]
    for old_process in context.missing_counterparts():
        if "session" not in old_process.name:
            continue
        control_fd = None
        for fd, obj in old_process.fdtable.items():
            if obj.kind == "stream":
                control_fd = fd
                break
        if control_fd is None:
            continue
        context.respawn(old_process, session_restore, args=(control_fd,))


def setup_world(kernel) -> None:
    kernel.fs.create("/etc/ssh/host_key", b"\x13\x37" * 32)
