"""Update series for the four evaluation servers (Table 1 inputs).

The paper evaluates 40 updates: 5 each for Apache httpd (v2.2.23–v2.3.8),
vsftpd (v1.1.0–v2.0.2) and OpenSSH (v3.5–v3.8), and 25 for nginx
(v0.8.54–v1.0.15).  Our simulated servers expose the same *kinds* of
changes across a numbered version line:

* pure function changes (most nginx updates — its tight release cycle);
* type changes (fields added to session/scoreboard/stats structures),
  which exercise mutable tracing's type transformations;
* a semantic state change (httpd's scoreboard switches its counter unit),
  which requires a user ``MCR_ADD_OBJ_HANDLER`` — the paper's "793 LOC of
  state transfer code" bucket;
* a startup change (nginx reads an extra config key), which exercises
  mutable reinitialization's live-execution path.

Patch-size columns (LOC/Fun/Var) describe *our* simulated patches; the
benchmark report prints the paper's numbers alongside for comparison.
Type-change counts are computed structurally from the type registries.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.runtime.program import Program
from repro.servers import httpd, nginx, opensshd, simple, vsftpd


class UpdateSpec:
    """One update in a series."""

    def __init__(
        self,
        from_version: int,
        to_version: int,
        description: str,
        loc: int,
        functions: int,
        variables: int,
        needs_st_handler: bool = False,
        st_loc: int = 0,
    ) -> None:
        self.from_version = from_version
        self.to_version = to_version
        self.description = description
        self.loc = loc
        self.functions = functions
        self.variables = variables
        self.needs_st_handler = needs_st_handler
        self.st_loc = st_loc

    def types_changed(self, make: Callable[[int], Program]) -> int:
        old = make(self.from_version)
        new = make(self.to_version)
        diff = new.type_changes(old)
        return len(diff["added"]) + len(diff["removed"]) + len(diff["changed"])


class UpdateSeries:
    """A server's update line plus the paper's reference Table-1 row."""

    def __init__(
        self,
        name: str,
        make: Callable[..., Program],
        setup_world: Callable,
        port: int,
        updates: List[UpdateSpec],
        paper_row: Dict[str, int],
    ) -> None:
        self.name = name
        self.make = make
        self.setup_world = setup_world
        self.port = port
        self.updates = updates
        self.paper_row = paper_row

    # -- Table 1 'Updates' / 'Changes' / 'Engineering effort' columns ---------

    def num_updates(self) -> int:
        return len(self.updates)

    def total_loc(self) -> int:
        return sum(u.loc for u in self.updates)

    def total_functions(self) -> int:
        return sum(u.functions for u in self.updates)

    def total_variables(self) -> int:
        return sum(u.variables for u in self.updates)

    def total_types(self) -> int:
        return sum(u.types_changed(self.make) for u in self.updates)

    def annotation_loc(self) -> int:
        return self.make(1).annotations.annotation_loc()

    def st_loc(self) -> int:
        return sum(u.st_loc for u in self.updates)


def _apply_httpd_semantic_handler(program: Program) -> Program:
    """The httpd v5->v6 semantic scoreboard change needs an ST handler:
    access counts change unit from requests to milli-requests."""

    def scoreboard_unit_handler(context) -> None:
        for slot in context.transformed:
            slot["access_count"] = slot["access_count"] * 1000

    program.annotations.MCR_ADD_OBJ_HANDLER(
        "httpd_scoreboard", scoreboard_unit_handler, loc=24
    )
    return program


def make_httpd_update(version: int, **kwargs) -> Program:
    program = httpd.make_program(version, **kwargs)
    if version >= 6:
        _apply_httpd_semantic_handler(program)
    return program


HTTPD_SERIES = UpdateSeries(
    name="httpd",
    make=make_httpd_update,
    setup_world=httpd.setup_world,
    port=80,
    updates=[
        UpdateSpec(1, 2, "request-handling refactor", 310, 24, 2),
        UpdateSpec(2, 3, "scoreboard grows bytes_served", 520, 41, 3),
        UpdateSpec(3, 4, "stats grow keepalive accounting", 280, 18, 2),
        UpdateSpec(4, 5, "banner/config cleanup", 150, 9, 4),
        UpdateSpec(5, 6, "scoreboard unit change (semantic)", 460, 33, 1,
                   needs_st_handler=True, st_loc=24),
    ],
    paper_row={"Num": 5, "LOC": 10_844, "Fun": 829, "Var": 28, "Type": 48,
               "Ann": 181, "ST": 302},
)

NGINX_SERIES = UpdateSeries(
    name="nginx",
    make=nginx.make_program,
    setup_world=nginx.setup_world,
    port=8081,
    updates=(
        [UpdateSpec(1, 2, "worker-cycle tweak", 40, 3, 0)]
        + [UpdateSpec(2, 3, "cycle grows keepalive_timeout", 120, 9, 1)]
        + [UpdateSpec(v, v + 1, f"maintenance release {v + 1}", 35 + v, 2, 0)
           for v in range(3, 7)]
        + [UpdateSpec(7, 8, "connection grows bytes_sent (v7 line)", 140, 11, 1)]
        + [UpdateSpec(v, v + 1, f"maintenance release {v + 1}", 30 + v, 2, 0)
           for v in range(8, 12)]
        + [UpdateSpec(12, 13, "stats grow errors (v12 line)", 110, 8, 1)]
        + [UpdateSpec(v, v + 1, f"maintenance release {v + 1}", 25 + v, 2, 1 if v % 5 == 0 else 0)
           for v in range(13, 26)]
    ),
    paper_row={"Num": 25, "LOC": 9_681, "Fun": 711, "Var": 51, "Type": 54,
               "Ann": 22, "ST": 335},
)

VSFTPD_SERIES = UpdateSeries(
    name="vsftpd",
    make=vsftpd.make_program,
    setup_world=vsftpd.setup_world,
    port=21,
    updates=[
        UpdateSpec(1, 2, "command-loop hardening", 180, 12, 3),
        UpdateSpec(2, 3, "session grows failed_logins", 240, 17, 2),
        UpdateSpec(3, 4, "transfer-path refactor", 160, 11, 1),
        UpdateSpec(4, 5, "session grows idle_seconds", 210, 14, 2),
        UpdateSpec(5, 6, "logging cleanup", 90, 6, 1),
    ],
    paper_row={"Num": 5, "LOC": 5_830, "Fun": 305, "Var": 121, "Type": 35,
               "Ann": 82, "ST": 21},
)

OPENSSHD_SERIES = UpdateSeries(
    name="opensshd",
    make=opensshd.make_program,
    setup_world=opensshd.setup_world,
    port=22,
    updates=[
        UpdateSpec(1, 2, "auth-path refactor", 260, 19, 2),
        UpdateSpec(2, 3, "session grows auth_attempts", 340, 26, 3),
        UpdateSpec(3, 4, "exec-helper changes", 200, 15, 1),
        UpdateSpec(4, 5, "session grows last_command", 280, 21, 2),
        UpdateSpec(5, 6, "key-handling cleanup", 130, 8, 1),
    ],
    paper_row={"Num": 5, "LOC": 14_370, "Fun": 894, "Var": 84, "Type": 33,
               "Ann": 49, "ST": 135},
)

SIMPLE_SERIES = UpdateSeries(
    name="simple",
    make=simple.make_program,
    setup_world=simple.setup_world,
    port=8080,
    updates=[UpdateSpec(1, 2, "list node grows 'new' field (Figure 2)", 20, 2, 0)],
    paper_row={},
)

ALL_SERIES: Dict[str, UpdateSeries] = {
    "httpd": HTTPD_SERIES,
    "nginx": NGINX_SERIES,
    "vsftpd": VSFTPD_SERIES,
    "opensshd": OPENSSHD_SERIES,
}


def series_for(name: str) -> UpdateSeries:
    return ALL_SERIES[name]
