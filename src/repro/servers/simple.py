"""The Listing-1 example server: a minimal event-driven MCR subject.

Structure mirrors the paper's sample program:

* ``server_init`` performs all startup (config file, socket/bind/listen,
  heap-allocated startup configuration stored in the global ``conf``);
* the main loop blocks in ``server_get_event`` (the natural quiescent
  point) and dispatches to ``server_handle_event``;
* auxiliary state: a global linked list ``list_head`` of heap nodes
  (precisely traced and type-transformable — Figure 2), and a ``char
  b[8]`` buffer that hides a pointer to an untyped heap array (handled by
  conservative tracing: the hidden target becomes immutable).

Protocol (newline-framed text):

* ``push <n>``  — prepend a list node with value ``n``; reply ``ok <len>``
* ``sum``       — reply with the sum of all node values
* ``version``   — reply with the program version string

Version 2 adds a ``new`` field to the list node type (exactly the paper's
Figure 2 transformation) and tags fresh nodes with ``new=1``.
"""

from __future__ import annotations

import struct as _struct
from typing import Dict

from repro.errors import SimError
from repro.kernel.process import sim_function
from repro.runtime.program import GlobalVar, Program
from repro.servers.common import PORT_SIMPLE, parse_command
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    FuncType,
    INT32,
    INT64,
    PointerType,
    StructType,
)

MAX_CLIENTS = 32


def make_types(version: int) -> Dict[str, object]:
    """The program's type registry; v2 grows the list node (Figure 2)."""
    node_fields = [("value", INT32)]
    if version >= 2:
        node_fields.append(("new", INT32))
    l_t = StructType("l_t", node_fields + [("next", PointerType(None, name="l_t*"))])
    conf_s = StructType(
        "conf_s",
        [
            ("port", INT32),
            ("max_clients", INT32),
            ("listen_fd", INT32),
            ("name", ArrayType(CHAR, 16)),
        ],
    )
    return {"l_t": l_t, "conf_s": conf_s}


def make_globals(types: Dict[str, object]) -> list:
    return [
        GlobalVar("b", ArrayType(CHAR, 8)),
        GlobalVar("list_head", PointerType(types["l_t"], name="l_t*")),
        GlobalVar("list_len", INT64),
        GlobalVar("conf", PointerType(types["conf_s"], name="conf_s*")),
        GlobalVar("clients", ArrayType(INT32, MAX_CLIENTS), init=[-1] * MAX_CLIENTS),
        GlobalVar("request_count", INT64),
        # A code pointer (dispatch-table style): must be remapped by
        # function symbol across versions, never copied.
        GlobalVar("handler_fn", PointerType(FuncType("handler"), name="handler_fn*")),
    ]


def _make_main(version: int, types: Dict[str, object]):
    l_t = types["l_t"]
    conf_s = types["conf_s"]

    @sim_function
    def server_init(sys):
        crt = sys.process.crt
        cfg_fd = yield from sys.open("/etc/simple.conf", "r")
        raw = yield from sys.read(cfg_fd)
        yield from sys.close(cfg_fd)
        port = int(raw.decode().strip() or PORT_SIMPLE)
        listen_fd = yield from sys.socket()
        yield from sys.bind(listen_fd, port)
        yield from sys.listen(listen_fd)
        epfd = yield from sys.epoll_create()
        yield from sys.epoll_ctl(epfd, "add", listen_fd)
        conf_addr = crt.malloc_typed(sys.thread, conf_s)
        crt.set(conf_addr, conf_s, "port", port)
        crt.set(conf_addr, conf_s, "max_clients", MAX_CLIENTS)
        crt.set(conf_addr, conf_s, "listen_fd", listen_fd)
        crt.write_cstr(crt.field_addr(conf_addr, conf_s, "name"), "simple")
        crt.gset("conf", conf_addr)
        crt.gset("clients", [-1] * MAX_CLIENTS)
        return listen_fd, epfd

    @sim_function
    def server_get_event(sys, epfd):
        ready = yield from sys.epoll_wait(epfd)
        return ready

    @sim_function
    def server_handle_event(sys, conn_fd):
        crt = sys.process.crt
        data = yield from sys.recv(conn_fd)
        if not data:
            yield from sys.close(conn_fd)
            return False
        crt.gset("request_count", crt.gget("request_count") + 1)
        if crt.gget("handler_fn") == 0:
            # Late-bound dispatch pointer (post-startup -> transferred).
            crt.gset("handler_fn", crt.func_addr("server_handle_event"))
        words = parse_command(data)
        if not words:
            yield from sys.send(conn_fd, b"err empty\n")
            return True
        if words[0] == "push":
            value = int(words[1])
            node = crt.malloc_typed(sys.thread, l_t)
            crt.set(node, l_t, "value", value)
            if version >= 2:
                crt.set(node, l_t, "new", 1)
            crt.set(node, l_t, "next", crt.gget("list_head"))
            crt.gset("list_head", node)
            length = crt.gget("list_len") + 1
            crt.gset("list_len", length)
            if length == 1:
                # Hide a pointer in the char buffer ``b`` (Listing 1 /
                # Figure 2): an untyped scratch array only reachable
                # through conservative scanning.
                scratch = crt.malloc(64, sys.thread)
                sys.process.space.write_bytes(scratch, b"scratchpad-data!")
                crt.gset("b", _struct.pack("<Q", scratch))
            yield from sys.send(conn_fd, f"ok {length}\n".encode())
            return True
        if words[0] == "sum":
            total = 0
            node = crt.gget("list_head")
            while node:
                total += crt.get(node, l_t, "value")
                node = crt.get(node, l_t, "next")
            yield from sys.send(conn_fd, f"sum {total}\n".encode())
            return True
        if words[0] == "version":
            yield from sys.send(conn_fd, f"version {version}\n".encode())
            return True
        yield from sys.send(conn_fd, b"err unknown\n")
        return True

    @sim_function
    def simple_main(sys):
        crt = sys.process.crt
        listen_fd, epfd = yield from server_init(sys)
        while True:
            sys.loop_iter("main")
            ready = yield from server_get_event(sys, epfd)
            if not isinstance(ready, list):
                continue
            for fd in ready:
                if fd == listen_fd:
                    conn = yield from sys.accept(listen_fd)
                    yield from sys.epoll_ctl(epfd, "add", conn)
                    slots = crt.gget("clients")
                    for index, slot in enumerate(slots):
                        if slot < 0:
                            slots[index] = conn
                            break
                    crt.gset("clients", slots)
                else:
                    try:
                        keep = yield from server_handle_event(sys, fd)
                    except SimError:
                        keep = False  # peer vanished mid-request (EPIPE)
                    if not keep:
                        yield from sys.epoll_ctl(epfd, "del", fd)
                        slots = crt.gget("clients")
                        slots = [(-1 if s == fd else s) for s in slots]
                        crt.gset("clients", slots)

    return simple_main


def make_program(version: int = 1) -> Program:
    types = make_types(version)
    return Program(
        name="simple",
        version=str(version),
        globals_=make_globals(types),
        main=_make_main(version, types),
        types=types,
        quiescent_points={("server_get_event", "epoll_wait")},
        metadata={"port": PORT_SIMPLE},
        functions=["server_init", "server_get_event", "server_handle_event", "simple_main"],
    )


def setup_world(kernel) -> None:
    """Create the files the server expects (config)."""
    kernel.fs.create("/etc/simple.conf", str(PORT_SIMPLE).encode())
