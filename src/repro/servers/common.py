"""Shared scaffolding for the simulated servers."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimError
from repro.kernel.process import sim_function

# Ports, one per server, stable across versions.
PORT_SIMPLE = 8080
PORT_HTTPD = 80
PORT_NGINX = 8081
PORT_VSFTPD = 21
PORT_SSHD = 22


@sim_function
def connect_with_retry(sys, port: int, attempts: int = 50, backoff_ns: int = 1_000_000):
    """Client-side connect that retries while the server is still binding."""
    last_error: Optional[SimError] = None
    for _ in range(attempts):
        try:
            fd = yield from sys.connect(port)
            return fd
        except SimError as error:
            last_error = error
            yield from sys.nanosleep(backoff_ns)
    raise last_error if last_error is not None else SimError("connect failed")


@sim_function
def send_line(sys, fd: int, text: str):
    yield from sys.send(fd, text.encode() + b"\n")
    return None


@sim_function
def recv_line(sys, fd: int, timeout_ns: Optional[int] = None):
    """Receive until a newline (requests are tiny; one recv usually does)."""
    buffered = bytearray()
    while True:
        data = yield from sys.recv(fd, timeout_ns=timeout_ns)
        if data is None or data == b"" or not isinstance(data, (bytes, bytearray)):
            return bytes(buffered) if buffered else b""
        buffered.extend(data)
        if b"\n" in buffered:
            line, _, rest = bytes(buffered).partition(b"\n")
            # Tiny protocol: at most one request in flight per client, so
            # ``rest`` is empty by construction.
            return line


def parse_command(line: bytes) -> List[str]:
    return line.decode(errors="replace").strip().split()
