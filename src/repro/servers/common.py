"""Shared scaffolding for the simulated servers.

Besides the connect/send/recv helpers, this module is the one routing
point for *client-perceived* measurements: every workload driver stamps
each request with virtual-clock send/receive times through a
``ClientLatencyLog``, and ``ClientPerceived`` turns one log into the
update verdict the paper's evaluation is built on — the latency
distribution plus the blackout interval (the longest gap in completed
responses) judged against a downtime budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.clock import ns_to_ms
from repro.errors import SimError
from repro.kernel.process import sim_function
from repro.obs.metrics import Histogram

# Ports, one per server, stable across versions.
PORT_SIMPLE = 8080
PORT_HTTPD = 80
PORT_NGINX = 8081
PORT_VSFTPD = 21
PORT_SSHD = 22


@sim_function
def connect_with_retry(sys, port: int, attempts: int = 50, backoff_ns: int = 1_000_000):
    """Client-side connect that retries while the server is still binding."""
    last_error: Optional[SimError] = None
    for _ in range(attempts):
        try:
            fd = yield from sys.connect(port)
            return fd
        except SimError as error:
            last_error = error
            yield from sys.nanosleep(backoff_ns)
    raise last_error if last_error is not None else SimError("connect failed")


@sim_function
def send_line(sys, fd: int, text: str):
    yield from sys.send(fd, text.encode() + b"\n")
    return None


@sim_function
def recv_line(sys, fd: int, timeout_ns: Optional[int] = None):
    """Receive until a newline (requests are tiny; one recv usually does)."""
    buffered = bytearray()
    while True:
        data = yield from sys.recv(fd, timeout_ns=timeout_ns)
        if data is None or data == b"" or not isinstance(data, (bytes, bytearray)):
            return bytes(buffered) if buffered else b""
        buffered.extend(data)
        if b"\n" in buffered:
            line, _, rest = bytes(buffered).partition(b"\n")
            # Tiny protocol: at most one request in flight per client, so
            # ``rest`` is empty by construction.
            return line


def parse_command(line: bytes) -> List[str]:
    return line.decode(errors="replace").strip().split()


# -- client-perceived measurement ----------------------------------------------


class ClientLatencyLog:
    """Per-workload virtual-time request stamps: (send_ns, recv_ns) pairs.

    Every workload driver owns one and calls ``record`` when a request
    completes.  Recording never advances the virtual clock, so stamping
    requests cannot change any measured phase timing; each observation is
    additionally routed into the active collector's metrics registry (a
    no-op when none is installed).
    """

    def __init__(self, metric: str = "client.latency_ns") -> None:
        self.metric = metric
        self.samples: List[Tuple[int, int]] = []

    def record(self, send_ns: int, recv_ns: int) -> None:
        self.samples.append((send_ns, recv_ns))
        obs.observe(self.metric, recv_ns - send_ns)

    @property
    def count(self) -> int:
        return len(self.samples)

    def latencies_ns(self) -> List[int]:
        return [recv_ns - send_ns for send_ns, recv_ns in self.samples]

    def completions_ns(self) -> List[int]:
        return sorted(recv_ns for _send_ns, recv_ns in self.samples)

    def histogram(self, boundaries: Optional[Sequence[int]] = None) -> Histogram:
        return Histogram.from_values(
            self.metric, self.latencies_ns(), boundaries=boundaries
        )

    def blackout_ns(self, window: Optional[Tuple[int, int]] = None) -> int:
        """The longest gap in completed responses, in virtual ns.

        This is the client-visible stall: the maximum interval during
        which *no* request completed.  With an explicit ``window`` the
        edges count too (no completion near a window edge is a stall);
        by default the window spans the observed completions.
        """
        completions = self.completions_ns()
        if not completions:
            if window is not None:
                return window[1] - window[0]
            return 0
        points = list(completions)
        if window is not None:
            lo, hi = window
            # Clamp out-of-window completions onto the nearest edge
            # instead of discarding them: a response that completed just
            # outside the window still bounds the stall at that edge,
            # whereas dropping it would inflate the measured blackout.
            points = [lo] + sorted(min(max(c, lo), hi) for c in points) + [hi]
        if len(points) < 2:
            return 0
        return max(b - a for a, b in zip(points, points[1:]))


class ClientPerceived:
    """The workload's verdict on one live update.

    Bundles the latency histogram, the measured blackout interval, and
    the SLO verdict against a configurable downtime budget
    (``MCRConfig.downtime_budget_ns``).
    """

    def __init__(
        self,
        histogram: Histogram,
        blackout_ns: int,
        budget_ns: int,
        window_ns: int = 0,
    ) -> None:
        self.histogram = histogram
        self.blackout_ns = blackout_ns
        self.budget_ns = budget_ns
        self.window_ns = window_ns
        self.slo_ok = blackout_ns <= budget_ns

    @classmethod
    def measure(
        cls,
        log: ClientLatencyLog,
        budget_ns: int,
        window: Optional[Tuple[int, int]] = None,
    ) -> "ClientPerceived":
        completions = log.completions_ns()
        if window is not None:
            window_ns = window[1] - window[0]
        elif len(completions) >= 2:
            window_ns = completions[-1] - completions[0]
        else:
            window_ns = 0
        return cls(
            log.histogram(),
            log.blackout_ns(window),
            budget_ns,
            window_ns=window_ns,
        )

    def to_dict(self) -> Dict[str, object]:
        summary = self.histogram.summary_ms()
        return {
            "requests": summary["count"],
            "p50_ms": summary["p50_ms"],
            "p95_ms": summary["p95_ms"],
            "p99_ms": summary["p99_ms"],
            "max_ms": summary["max_ms"],
            "blackout_ms": ns_to_ms(self.blackout_ns),
            "downtime_budget_ms": ns_to_ms(self.budget_ns),
            "window_ms": ns_to_ms(self.window_ns),
            "slo_ok": self.slo_ok,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "ok" if self.slo_ok else "VIOLATED"
        return (
            f"<ClientPerceived n={self.histogram.count} "
            f"blackout={ns_to_ms(self.blackout_ns):.2f}ms slo={verdict}>"
        )
