"""Simulated Apache httpd: multiprocess + multithreaded web server.

Captures the httpd properties the paper calls out:

* **worker-MPM structure**: a master process (``wait_child`` quiescent
  point) forks N server processes; each runs a listener thread
  (``epoll_wait`` QP) and K worker threads blocking on an in-process job
  queue (``recvmsg`` QP) implemented — as in Apache's fd queues — over a
  Unix socketpair, which is in-kernel state MCR inherits wholesale
  (in-flight jobs survive the update).
* **nested region allocation** (APR pools): per-connection state lives in
  pool memory, uninstrumented — the dominant source of likely pointers in
  Table 2, including pool pointers into static string tables.
* **"detects its own running instance"**: startup aborts when the pidfile
  exists.  The MCR-prepared build disables the check (the paper's 8-LOC
  preparation); building with ``mcr_prepared=False`` demonstrates the
  rollback this behaviour otherwise forces.
* a **volatile** thread class: a janitor thread spawned lazily on the
  first accepted connection, recreated after updates by a
  ``post_startup`` handler (part of the paper's 163-LOC extension).

Protocol: ``GET <path>`` (keep-alive) and ``SCORE`` (scoreboard dump).
"""

from __future__ import annotations

import struct as _struct
from typing import Dict, Optional

from repro.errors import SimError
from repro.kernel.process import sim_function
from repro.runtime.program import GlobalVar, Program
from repro.servers.common import PORT_HTTPD, parse_command
from repro.types.descriptors import (
    ArrayType,
    CHAR,
    FuncType,
    INT32,
    INT64,
    PointerType,
    StructType,
)

SERVER_PROCESSES = 2
WORKER_THREADS = 3
SCOREBOARD_SLOTS = 8
CONN_REC_SIZE = 64  # raw pool object: fd, requests, mime ptr, scratch


def make_types(version: int) -> Dict[str, object]:
    brigade_fields = [("length", INT32), ("flags", INT32), ("next", PointerType(None))]
    score_fields = [
        ("pid", INT32),
        ("state", INT32),
        ("access_count", INT64),
    ]
    if version >= 3:
        score_fields.append(("bytes_served", INT64))
    scoreboard_t = StructType("scoreboard_t", score_fields)
    stats_fields = [("requests", INT64), ("connections", INT64)]
    if version >= 4:
        stats_fields.append(("keepalives", INT64))
    httpd_stats_t = StructType("httpd_stats_t", stats_fields)
    bucket_t = StructType("bucket_t", brigade_fields)
    return {
        "scoreboard_t": scoreboard_t,
        "httpd_stats_t": httpd_stats_t,
        "bucket_t": bucket_t,
    }


def make_globals(types: Dict[str, object]) -> list:
    return [
        GlobalVar("httpd_listen_fd", INT32, init=-1),
        GlobalVar("httpd_scoreboard", ArrayType(types["scoreboard_t"], SCOREBOARD_SLOTS)),
        GlobalVar("httpd_stats", types["httpd_stats_t"]),
        GlobalVar("httpd_janitor_ticks", INT64),
        # Root pointer to the per-process pool hierarchy (ap_pglobal).
        GlobalVar("httpd_pool_root", PointerType(None, name="void*")),
        GlobalVar("mime_html", ArrayType(CHAR, 16), init=b"text/html"),
        GlobalVar("mime_bin", ArrayType(CHAR, 16), init=b"application/bin"),
        GlobalVar("server_banner", ArrayType(CHAR, 32), init=b"Apache-sim/2.2"),
        # Module hook table (ap_hook_* style): code pointers remapped by
        # function symbol across versions.
        GlobalVar("httpd_hooks", ArrayType(PointerType(FuncType("hook"), name="hook*"), 4)),
    ]


def _make_main(
    version: int,
    types: Dict[str, object],
    mcr_prepared: bool,
    server_processes: int = SERVER_PROCESSES,
):
    scoreboard_t = types["scoreboard_t"]
    httpd_stats_t = types["httpd_stats_t"]
    bucket_t = types["bucket_t"]

    @sim_function
    def httpd_janitor_loop(sys):
        crt = sys.process.crt
        while True:
            sys.loop_iter("janitor")
            yield from sys.nanosleep(50_000_000)
            crt.gset("httpd_janitor_ticks", crt.gget("httpd_janitor_ticks") + 1)

    @sim_function
    def httpd_janitor_main(sys):
        yield from httpd_janitor_loop(sys)

    @sim_function
    def httpd_handle_request(sys, conn_fd, conn_rec, pool, slot_index):
        crt = sys.process.crt
        data = yield from sys.recv(conn_fd)
        if not data:
            return False
        words = parse_command(data)
        stats = crt.global_addr("httpd_stats")
        crt.set(stats, httpd_stats_t, "requests",
                crt.get(stats, httpd_stats_t, "requests") + 1)
        slot = crt.global_addr("httpd_scoreboard") + slot_index * scoreboard_t.size
        crt.set(slot, scoreboard_t, "access_count",
                crt.get(slot, scoreboard_t, "access_count") + 1)
        hooks_addr = crt.global_addr("httpd_hooks")
        if sys.process.space.read_word(hooks_addr) == 0:
            sys.process.space.write_word(hooks_addr, crt.func_addr("httpd_handle_request"))
            sys.process.space.write_word(hooks_addr + 8, crt.func_addr("httpd_listener_loop"))
        space = sys.process.space
        space.write_word(conn_rec + 8, space.read_word(conn_rec + 8) + 1)  # requests++
        if not words:
            yield from sys.send(conn_fd, b"400 empty\n")
            return True
        if words[0] == "GET":
            path = words[1] if len(words) > 1 else "/index.html"
            full = "/srv/www" + path
            info = yield from sys.stat(full)
            if info is None:
                yield from sys.send(conn_fd, b"404 not found\n")
                return True
            fd = yield from sys.open(full)
            body = yield from sys.read(fd, info["size"])
            yield from sys.close(fd)
            # Bucket-brigade buffers: plain malloc (instrumented call
            # sites under +SInstr — the Table-3 httpd allocator cost).
            buckets = []
            for _ in range(4):
                bucket = crt.malloc_typed(sys.thread, bucket_t)
                crt.set(bucket, bucket_t, "length", len(body))
                buckets.append(bucket)
            for bucket in buckets:
                crt.free(bucket)
            # Per-request buffer from the connection pool (uninstrumented):
            # stores a pointer to the static mime table -> likely pointer.
            buf = crt.region_alloc_raw(pool._region, 48) if hasattr(pool, "_region") else pool.alloc(48)
            mime = "mime_html" if path.endswith(".html") else "mime_bin"
            space.write_word(buf, crt.global_addr(mime))
            space.write_word(buf + 8, conn_rec)
            if version >= 3:
                crt.set(slot, scoreboard_t, "bytes_served",
                        crt.get(slot, scoreboard_t, "bytes_served") + len(body))
            yield from sys.cpu(len(body) * 2)
            yield from sys.send(conn_fd, f"200 {len(body)}\n".encode() + body)
            return True
        if words[0] == "SCORE":
            total = crt.get(stats, httpd_stats_t, "requests")
            ticks = crt.gget("httpd_janitor_ticks")
            yield from sys.send(
                conn_fd, f"score requests={total} ticks={ticks} v{version}\n".encode()
            )
            return True
        yield from sys.send(conn_fd, b"400 bad\n")
        return True

    @sim_function
    def httpd_worker_loop(sys, job_rx, done_tx, conns, pools, proc_pool, slot_index):
        space = sys.process.space
        while True:
            sys.loop_iter("worker")
            data, _fds = yield from sys.recvmsg(job_rx)
            conn_fd = int(data)
            conn_rec = conns.get(conn_fd)
            pool = pools.get(conn_fd)
            if conn_rec is None or pool is None:
                # Connection restored across a live update: its fd (and
                # epoll registration) was inherited, but the new version
                # never saw the accept.  Materialize fresh pool state.
                pool = proc_pool.create_child(f"conn-{conn_fd}")
                conn_rec = pool.alloc(CONN_REC_SIZE)
                space.write_word(conn_rec, conn_fd)
                conns[conn_fd] = conn_rec
                pools[conn_fd] = pool
            try:
                keep = yield from httpd_handle_request(sys, conn_fd, conn_rec, pool, slot_index)
            except SimError:
                keep = False  # peer vanished mid-request (EPIPE)
            if keep:
                yield from sys.sendmsg(done_tx, f"ok:{conn_fd}".encode())
            else:
                yield from sys.close(conn_fd)
                pool.destroy()
                conns.pop(conn_fd, None)
                pools.pop(conn_fd, None)
                yield from sys.sendmsg(done_tx, f"closed:{conn_fd}".encode())

    @sim_function
    def httpd_worker_main(sys, job_rx, done_tx, conns, pools, proc_pool, slot_index):
        yield from httpd_worker_loop(sys, job_rx, done_tx, conns, pools, proc_pool, slot_index)

    @sim_function
    def httpd_listener_loop(sys, listen_fd, epoll_fd, job_tx, done_rx, conns, pools, proc_pool, state):
        crt = sys.process.crt
        while True:
            sys.loop_iter("listener")
            ready = yield from sys.epoll_wait(epoll_fd)
            if not isinstance(ready, list):
                continue
            for fd in ready:
                if fd == listen_fd:
                    # Non-blocking accept: both server processes poll the
                    # same listener (thundering herd); the loser gets
                    # EAGAIN (TIMEOUT here) and goes back to epoll.
                    conn_fd = yield from sys.accept(listen_fd, timeout_ns=100_000)
                    if not isinstance(conn_fd, int):
                        continue
                    pool = proc_pool.create_child(f"conn-{conn_fd}")
                    conn_rec = pool.alloc(CONN_REC_SIZE)
                    space = sys.process.space
                    space.write_word(conn_rec, conn_fd)
                    space.write_word(conn_rec + 16, crt.global_addr("server_banner"))
                    # Header-table entries (APR-style): small pool objects
                    # pointing at static strings and back at the conn_rec
                    # — the bulk of httpd's likely-pointer population.
                    for header_index in range(6):
                        entry = pool.alloc(32)
                        mime_name = "mime_html" if header_index % 2 == 0 else "mime_bin"
                        space.write_word(entry, crt.global_addr(mime_name))
                        space.write_word(entry + 8, conn_rec)
                    io_buf = pool.alloc(4 * 1024)
                    space.write_bytes(io_buf, b"\x41" * 1024)
                    conns[conn_fd] = conn_rec
                    pools[conn_fd] = pool
                    stats = crt.global_addr("httpd_stats")
                    crt.set(stats, httpd_stats_t, "connections",
                            crt.get(stats, httpd_stats_t, "connections") + 1)
                    yield from sys.epoll_ctl(epoll_fd, "add", conn_fd)
                    if not state.get("janitor_started"):
                        state["janitor_started"] = True
                        yield from sys.thread_create(httpd_janitor_main, name="janitor")
                    continue
                if fd == done_rx:
                    data, _fds = yield from sys.recvmsg(done_rx)
                    kind, _, num = data.decode().partition(":")
                    if kind == "ok":
                        yield from sys.epoll_ctl(epoll_fd, "add", int(num))
                    continue
                # Connection data: hand the fd to a worker thread.
                yield from sys.epoll_ctl(epoll_fd, "del", fd)
                yield from sys.sendmsg(job_tx, str(fd).encode())

    @sim_function
    def httpd_server_process(sys, listen_fd, proc_index):
        crt = sys.process.crt
        # Scoreboard slots are a fixed global array; scaled-up prefork
        # pools (bench scaling curves) share them round-robin.  Identity
        # for the default configuration (server_processes <= slots).
        slot_index = proc_index % SCOREBOARD_SLOTS
        slot = crt.global_addr("httpd_scoreboard") + slot_index * scoreboard_t.size
        pid = yield from sys.getpid()
        crt.set(slot, scoreboard_t, "pid", pid)
        crt.set(slot, scoreboard_t, "state", 1)
        proc_pool = crt.pool_create(name=f"proc-{proc_index}")
        crt.gset("httpd_pool_root", proc_pool.first_block_base)
        # Startup configuration tables (directives, mime maps): clean at
        # update time, re-created by the new version's own startup.
        space = sys.process.space
        for entry_index in range(256):
            entry = proc_pool.alloc(512)
            space.write_bytes(entry, f"directive-{entry_index}".encode().ljust(64, b"."))
        job_rx, job_tx = yield from sys.socketpair()
        done_rx, done_tx = yield from sys.socketpair()
        epoll_fd = yield from sys.epoll_create()
        yield from sys.epoll_ctl(epoll_fd, "add", listen_fd)
        yield from sys.epoll_ctl(epoll_fd, "add", done_rx)
        conns: Dict[int, int] = {}
        pools: Dict[int, object] = {}
        state: Dict[str, bool] = {}
        for index in range(WORKER_THREADS):
            yield from sys.thread_create(
                httpd_worker_main,
                args=(job_rx, done_tx, conns, pools, proc_pool, slot_index),
                name=f"worker-{index}",
            )
        yield from httpd_listener_loop(
            sys, listen_fd, epoll_fd, job_tx, done_rx, conns, pools, proc_pool, state
        )

    @sim_function
    def httpd_check_instance(sys):
        """Apache aborts when it detects its own running instance."""
        info = yield from sys.stat("/var/run/httpd.pid")
        if info is not None and not mcr_prepared:
            yield from sys.exit(1)
        pid = yield from sys.getpid()
        fd = yield from sys.open("/var/run/httpd.pid", "w")
        yield from sys.write(fd, str(pid).encode())
        yield from sys.close(fd)

    @sim_function
    def httpd_master_loop(sys):
        while True:
            sys.loop_iter("master")
            yield from sys.wait_child()

    @sim_function
    def httpd_main(sys):
        crt = sys.process.crt
        yield from httpd_check_instance(sys)
        cfg_fd = yield from sys.open("/etc/httpd.conf")
        raw = yield from sys.read(cfg_fd)
        yield from sys.close(cfg_fd)
        port = int(raw.decode().strip() or PORT_HTTPD)
        listen_fd = yield from sys.socket()
        yield from sys.bind(listen_fd, port)
        yield from sys.listen(listen_fd, 512)
        crt.gset("httpd_listen_fd", listen_fd)
        for index in range(server_processes):
            yield from sys.fork(
                httpd_server_process, args=(listen_fd, index), name=f"httpd-server-{index}"
            )
        yield from httpd_master_loop(sys)

    return httpd_main, httpd_janitor_main


def make_program(
    version: int = 1,
    mcr_prepared: bool = True,
    server_processes: Optional[int] = None,
) -> Program:
    """Build the httpd program.

    ``server_processes`` overrides the prefork pool size (default
    ``SERVER_PROCESSES``); the bench scaling curves use it to stand up
    hundreds-of-workers trees on the stock program.
    """
    types = make_types(version)
    if server_processes is None:
        server_processes = SERVER_PROCESSES
    main, janitor_main = _make_main(
        version, types, mcr_prepared, server_processes=server_processes
    )
    program = Program(
        name="httpd",
        version=str(version),
        globals_=make_globals(types),
        main=main,
        types=types,
        quiescent_points={
            ("httpd_master_loop", "wait_child"),
            ("httpd_listener_loop", "epoll_wait"),
            ("httpd_worker_loop", "recvmsg"),
            ("httpd_janitor_loop", "nanosleep"),
        },
        metadata={
            "port": PORT_HTTPD,
            "mcr_prepared": mcr_prepared,
            # Rolling-update hook: the prefork server pool, master excluded
            # (the janitor and master ride in the final remainder batch).
            "enumerate_workers": lambda root: [
                p for p in root.tree() if p.name.startswith("httpd-server-")
            ],
        },
        functions=[
            "httpd_main", "httpd_master_loop", "httpd_server_process",
            "httpd_listener_loop", "httpd_worker_loop", "httpd_handle_request",
            "httpd_janitor_loop", "httpd_check_instance",
        ],
    )
    program.metadata["janitor_main"] = janitor_main
    # Checkpoint-restore hook: threads that are not part of the
    # deterministic startup shape, keyed by name so the image restorer
    # can respawn them before validating the booted tree.
    program.metadata["volatile_thread_mains"] = {"janitor": janitor_main}
    if mcr_prepared:
        # The paper's 8 LOC (skip own-instance detection) + 10 LOC
        # (deterministic custom allocation behaviour).
        program.annotations.note_preparation_loc(18)
    # Volatile janitor-thread recreation (part of httpd's 163-LOC
    # extension to nonpersistent quiescent points).
    program.annotations.MCR_ADD_REINIT_HANDLER(
        restore_janitor_handler, stage="post_startup", loc=163
    )
    return program


def restore_janitor_handler(context) -> None:
    """Recreate janitor threads in paired new-version server processes."""
    program = context.new_session.program
    janitor_main = program.metadata["janitor_main"]
    for old_process in context.old_root.tree():
        for thread in old_process.live_threads():
            if thread.name != "janitor":
                continue
            new_process = context.paired_new_process(old_process)
            if new_process is None:
                continue
            already = any(t.name == "janitor" for t in new_process.live_threads())
            if not already:
                context.respawn_thread(new_process, janitor_main, (), thread)


def setup_world(kernel) -> None:
    kernel.fs.create("/etc/httpd.conf", str(PORT_HTTPD).encode())
    kernel.fs.create("/srv/www/index.html", b"<html>apache-sim</html>")
    kernel.fs.create("/srv/www/file1k.bin", b"A" * 1024)
    kernel.fs.create("/srv/www/big.bin", b"Z" * 4096)
