"""Mutable Checkpoint-Restart (MCR), reproduced on a simulated machine.

Public API surface (see README.md for the tour):

* ``repro.kernel``   — the simulated machine (``Kernel``, ``sim_function``).
* ``repro.runtime``  — programs, build configurations, the loader, and the
  MCR dynamic runtime (``MCRSession``).
* ``repro.mcr``      — the live-update machinery (``McrCtl``,
  ``LiveUpdateController``, annotations, diagnostics).
* ``repro.servers``  — the simulated evaluation subjects.
* ``repro.workloads``— client drivers and profiling workloads.
* ``repro.bench``    — one harness per paper table/figure.

Quick start::

    from repro import boot, live_update

    world = boot("nginx")                       # kernel + v1 + MCR session
    result = live_update(world, version=2)      # commit or atomic rollback
"""

from typing import NamedTuple, Optional

__version__ = "1.0.0"

__all__ = ["boot", "live_update", "BootedWorld", "__version__"]


class BootedWorld(NamedTuple):
    """A running MCR-enabled server instance."""

    kernel: object
    program: object
    session: object
    root: object
    module: object


def boot(server: str = "simple", version: int = 1) -> BootedWorld:
    """Boot one of the bundled servers under the full MCR build."""
    import importlib

    from repro.kernel import Kernel
    from repro.runtime.instrument import BuildConfig
    from repro.runtime.libmcr import MCRSession
    from repro.runtime.program import load_program

    module = importlib.import_module(f"repro.servers.{server}")
    kernel = Kernel()
    module.setup_world(kernel)
    program = module.make_program(version)
    session = MCRSession(kernel, program, BuildConfig.full())
    root = load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=400_000)
    return BootedWorld(kernel, program, session, root, module)


def live_update(world: BootedWorld, version: int = 2, program: Optional[object] = None):
    """Live-update a booted world to ``version`` (or an explicit program).

    Returns the ``UpdateResult``; on commit, ``world.session`` is stale —
    use ``result.new_session`` (or keep an ``McrCtl``, which re-binds).
    """
    from repro.mcr.ctl import McrCtl

    ctl = McrCtl(world.kernel, world.session)
    return ctl.live_update(program or world.module.make_program(version))
