"""Re-execute a recorded run and assert bit-identical equivalence.

The ``Replayer`` takes either artifact a failed (or healthy) run leaves
behind:

* a **trace file** (``TraceLog.save`` output) — the full recording:
  scenario spec, every RNG draw, scheduler checkpoints, final
  observables; replay verifies all of them as the run re-executes.
* a **blackbox.json** (the controller's post-mortem dump) — it embeds a
  trace *reference*: the scenario spec inline plus the path of the trace
  file written next to it.  When the trace file is still there the full
  recording is used; when it is gone, the run is re-executed from the
  spec alone and the verdict degrades to outcome-identity (same
  ``failure_site``) — stated as such in the report, never silently.

``run(to_failure=True)`` stops right after the update attempt: no probe,
no teardown — the world halts in the state the failing fault site left
it, with the open span stack and the last flight-recorder entries
describing the failure.  ``export`` dumps the re-executed run's Chrome
trace (and the at-failure span stack) next to the given prefix for
Perfetto.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.export import chrome_trace, write_json
from repro.replay.trace import TraceLog


class ReplayReport:
    """The verdict of one replay: equivalent or diverged, and where."""

    def __init__(
        self,
        source: str,
        mode: str,
        scenario: Dict[str, Any],
    ) -> None:
        self.source = source
        # "trace" = full recording verified; "scenario" = trace file was
        # unavailable, outcome-identity only.
        self.mode = mode
        self.scenario = scenario
        self.equivalent = False
        self.divergences: List[Dict[str, Any]] = []
        self.to_failure = False
        self.failure_site_recorded: Optional[str] = None
        self.failure_site_replayed: Optional[str] = None
        self.clock_ns = 0
        self.picks = 0
        self.draws = 0
        self.open_spans: List[str] = []
        self.exports: List[str] = []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "mode": self.mode,
            "equivalent": self.equivalent,
            "to_failure": self.to_failure,
            "failure_site_recorded": self.failure_site_recorded,
            "failure_site_replayed": self.failure_site_replayed,
            "clock_ns": self.clock_ns,
            "picks": self.picks,
            "draws": self.draws,
            "divergences": self.divergences,
            "open_spans": self.open_spans,
            "exports": self.exports,
            "scenario": self.scenario,
        }

    def render(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "DIVERGED"
        spec = self.scenario
        lines = [
            f"replay {verdict}: {spec.get('server')} x {spec.get('mode')} "
            f"seed={spec.get('seed')} "
            f"({self.mode} verification{', to-failure' if self.to_failure else ''})",
            f"  virtual clock {self.clock_ns} ns, {self.picks} scheduler picks, "
            f"{self.draws} rng draws",
        ]
        if self.failure_site_recorded or self.failure_site_replayed:
            lines.append(
                f"  failure site: recorded={self.failure_site_recorded} "
                f"replayed={self.failure_site_replayed}"
            )
        if self.open_spans:
            lines.append(f"  open spans at failure: {' > '.join(self.open_spans)}")
        for entry in self.divergences:
            lines.append(
                f"  divergence [{entry['kind']}] {entry['where']}: "
                f"expected {entry['expected']!r}, got {entry['actual']!r}"
            )
        for path in self.exports:
            lines.append(f"  exported {path}")
        return "\n".join(lines)


def _looks_like_blackbox(payload: Dict[str, Any]) -> bool:
    return "entries" in payload or "reason" in payload


class Replayer:
    """Load a recorded run (trace file or blackbox.json) and re-execute it."""

    def __init__(self, source_path: str) -> None:
        self.source_path = str(source_path)
        with open(source_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        self.recorded: Optional[TraceLog] = None
        self.scenario: Dict[str, Any]
        self.blackbox: Optional[Dict[str, Any]] = None
        if _looks_like_blackbox(payload):
            self.blackbox = payload
            reference = payload.get("trace")
            if not reference:
                raise ValueError(
                    f"{source_path} has no embedded trace reference — "
                    "recorded runs require the update to run under a TraceLog"
                )
            self.scenario = dict(reference["scenario"])
            trace_path = reference.get("path")
            if trace_path and not os.path.isabs(trace_path):
                trace_path = os.path.join(
                    os.path.dirname(os.path.abspath(source_path)), trace_path
                )
            if trace_path and os.path.exists(trace_path):
                self.recorded = TraceLog.load(trace_path)
        else:
            self.recorded = TraceLog.from_dict(payload)
            self.recorded.path = self.source_path
            self.scenario = dict(self.recorded.scenario)

    # -- execution ------------------------------------------------------------

    def run(
        self,
        to_failure: bool = False,
        export: Optional[str] = None,
    ) -> ReplayReport:
        from repro.replay.scenario import run_scenario

        mode = "trace" if self.recorded is not None else "scenario"
        report = ReplayReport(self.source_path, mode, self.scenario)
        report.to_failure = to_failure
        if self.recorded is not None:
            trace = TraceLog.replay_of(self.recorded)
            report.failure_site_recorded = self.recorded.final.get("failure_site")
        else:
            # Trace file gone: re-record from the embedded spec and compare
            # the one outcome the black box itself asserts.
            trace = TraceLog.record(self.scenario)
            report.failure_site_recorded = (
                self.blackbox.get("failure_site") if self.blackbox else None
            )
        outcome = run_scenario(
            self.scenario, trace=trace, until_failure=to_failure
        )
        result = outcome.result
        report.failure_site_replayed = result.failure_site if result else None
        report.clock_ns = outcome.kernel.clock.now_ns
        report.picks = trace._picks
        report.draws = len(trace.draws)
        if trace.mode == "replay":
            report.divergences = [d.to_dict() for d in trace.divergences]
            report.equivalent = trace.equivalent
        else:
            report.equivalent = (
                outcome.raised is None
                and report.failure_site_replayed == report.failure_site_recorded
            )
            if not report.equivalent:
                report.divergences = [
                    {
                        "kind": "final",
                        "where": "failure_site",
                        "expected": report.failure_site_recorded,
                        "actual": report.failure_site_replayed,
                    }
                ]
        # The open span stack at the point of failure (the controller
        # records it into the black box it dumps on any failed attempt).
        if result is not None and result.blackbox is not None:
            report.open_spans = list(result.blackbox.get("open_spans", ()))
        if export:
            base = export
            if base.endswith(".json"):
                base = base[: -len(".json")]
            trace_out = write_json(
                f"{base}.chrome.json",
                chrome_trace(
                    outcome.collector,
                    process_name=f"replay:{self.scenario.get('server')}",
                ),
            )
            report.exports.append(trace_out)
            report.exports.append(
                write_json(f"{base}.report.json", report.to_dict())
            )
        return report


def replay_path(
    source_path: str,
    to_failure: bool = False,
    export: Optional[str] = None,
) -> ReplayReport:
    """One-call convenience: load ``source_path`` and re-execute it."""
    return Replayer(source_path).run(to_failure=to_failure, export=export)
