"""Named, seeded RNG streams — the single choke point for randomness.

Every pseudo-random draw in the tree routes through an ``RngStream``: a
thin wrapper over ``random.Random`` that (a) names the stream so each
draw is attributable ("faults.transfer.memory", "workload.ab.jitter",
"fuzz.master"), and (b) notes the draw — ``(stream, index, value)`` — to
the active ``TraceLog`` at draw time, so a recording captures every
nondeterministic input without the call sites knowing a trace exists.

Streams with an **explicit seed** produce exactly the sequence of
``random.Random(seed)`` — existing deterministic expectations (e.g. the
fault-plan probability tests) keep their values.  Streams created
through an ``RngRegistry`` without an explicit seed derive one from the
registry's master seed and the stream name (CRC-based), so one master
seed fans out into stable, independent, per-purpose streams.

``choice`` is implemented via ``randrange`` so the logged draw is the
chosen *index* (a JSON-exact int), never the element itself.
"""

from __future__ import annotations

import random
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Sequence

from repro.replay import trace as _trace


class RngStream:
    """One named pseudo-random sequence, recorded draw by draw."""

    __slots__ = ("name", "seed", "index", "_rng")

    def __init__(self, name: str, seed: int) -> None:
        self.name = name
        self.seed = seed
        self.index = 0          # draws taken so far
        self._rng = random.Random(seed)

    def _note(self, value: Any) -> Any:
        active = _trace.ACTIVE
        if active is not None:
            active.on_draw(self.name, self.index, value)
        self.index += 1
        return value

    # -- draw primitives ------------------------------------------------------

    def random(self) -> float:
        return self._note(self._rng.random())

    def uniform(self, low: float, high: float) -> float:
        return self._note(self._rng.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        return self._note(self._rng.randint(low, high))

    def randrange(self, start: int, stop: Optional[int] = None) -> int:
        if stop is None:
            return self._note(self._rng.randrange(start))
        return self._note(self._rng.randrange(start, stop))

    def getrandbits(self, bits: int) -> int:
        return self._note(self._rng.getrandbits(bits))

    def choice(self, seq: Sequence[Any]) -> Any:
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self.randrange(len(seq))]

    def reset(self) -> None:
        """Rewind to the seed (the draw index restarts too)."""
        self._rng = random.Random(self.seed)
        self.index = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStream {self.name!r} seed={self.seed} index={self.index}>"


def derive_seed(master: int, name: str) -> int:
    """Stable per-name seed derivation from a master seed."""
    return zlib.crc32(f"{master}:{name}".encode())


class RngRegistry:
    """A keyed family of ``RngStream``s fanned out from one master seed.

    ``stream(name)`` returns the same object for the same name for the
    registry's lifetime, so a stream's position advances monotonically
    no matter how many call sites share it.  An explicit ``seed``
    overrides derivation — the stream then matches ``random.Random(seed)``
    exactly (and re-requesting the name with a different explicit seed
    is an error: two sequences under one name would be unattributable).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, RngStream] = {}

    def stream(self, name: str, seed: Optional[int] = None) -> RngStream:
        existing = self._streams.get(name)
        if existing is not None:
            if seed is not None and seed != existing.seed:
                raise ValueError(
                    f"stream {name!r} already exists with seed "
                    f"{existing.seed}, requested {seed}"
                )
            return existing
        created = RngStream(
            name, derive_seed(self.seed, name) if seed is None else seed
        )
        self._streams[name] = created
        return created

    def names(self) -> Sequence[str]:
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"


# -- the module scope ----------------------------------------------------------
#
# Call sites that can't thread a registry through (FaultArm construction,
# workload jitter) ask the ambient one via ``stream()``.  With no registry
# active, each call site gets a private stream under a throwaway registry —
# identical behaviour to the old ad-hoc ``random.Random(seed)``, just
# recorded when a trace happens to be active.

ACTIVE: Optional[RngRegistry] = None


@contextmanager
def scoped(registry: Optional[RngRegistry]) -> Iterator[Optional[RngRegistry]]:
    """Activate ``registry`` as the ambient registry for the block."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = registry
    try:
        yield registry
    finally:
        ACTIVE = previous


def stream(name: str, seed: Optional[int] = None) -> RngStream:
    """A stream from the ambient registry (or a detached one if none)."""
    if ACTIVE is not None:
        return ACTIVE.stream(name, seed)
    return RngStream(name, derive_seed(0, name) if seed is None else seed)
