"""The trace log: every nondeterminism source of one run, re-executably.

A ``TraceLog`` in **record** mode is attached to a run (via the module
scope ``tracing(trace)`` plus ``bind_kernel``) and accumulates:

* the **scenario header** — the JSON-serializable spec that re-creates
  the run (server, update mode, fault plan, workload, master seed);
* the **draw log** — every pseudo-random draw taken through a named
  ``repro.replay.rng`` stream, in global order;
* **scheduler checkpoints** — a rolling CRC of the scheduler's pick
  order (which thread ran each step), snapshotted with the step count
  and the virtual clock every ``checkpoint_interval`` picks;
* the **final observables** — virtual clock, span-tree digest, tree
  fingerprint digest, and the update outcome.

The same object in **replay** mode carries a recorded baseline and
*verifies* instead of accumulating: each draw and each checkpoint is
compared against the recording as it happens, and the first few
mismatches are kept as ``Divergence`` records (never raised — a replay
divergence must not break the run's own never-raise safety property).
``finish`` compares the final observables.  ``equivalent`` is True only
when nothing diverged anywhere.

The file format is canonical JSON (sorted keys), so identical runs
produce byte-identical trace files.  Floats round-trip exactly through
``repr`` (shortest round-trip), so draw verification is exact equality,
not tolerance-based.
"""

from __future__ import annotations

import json
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

FORMAT = "repro-trace-v1"

# One scheduler checkpoint every this many picks.  Small enough to
# localize a divergence to a ~2k-step window, large enough that a
# multi-million-step run stays bounded (see MAX_CHECKPOINTS).
DEFAULT_CHECKPOINT_INTERVAL = 2_048
# Hard cap on stored checkpoints; past it the rolling CRC still folds
# every pick (the final CRC covers the whole run) but no new window
# snapshots are kept.
MAX_CHECKPOINTS = 4_096
# Keep the first few mismatches only: after the schedule diverges once,
# everything downstream differs and recording it all is noise.
MAX_DIVERGENCES = 8

MODE_RECORD = "record"
MODE_REPLAY = "replay"


class Divergence:
    """One replay mismatch: what differed, where, expected vs actual."""

    __slots__ = ("kind", "where", "expected", "actual")

    def __init__(self, kind: str, where: str, expected: Any, actual: Any) -> None:
        self.kind = kind          # "rng" | "sched" | "final"
        self.where = where
        self.expected = expected
        self.actual = actual

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "where": self.where,
            "expected": self.expected,
            "actual": self.actual,
        }

    def __repr__(self) -> str:
        return (
            f"<Divergence {self.kind} at {self.where}: "
            f"expected {self.expected!r}, got {self.actual!r}>"
        )


class TraceLog:
    """Record or verify one run's nondeterminism sources."""

    def __init__(
        self,
        scenario: Dict[str, Any],
        mode: str = MODE_RECORD,
        recorded: Optional["TraceLog"] = None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        if mode not in (MODE_RECORD, MODE_REPLAY):
            raise ValueError(f"mode must be 'record' or 'replay', got {mode!r}")
        if mode == MODE_REPLAY and recorded is None:
            raise ValueError("replay mode needs the recorded baseline")
        self.scenario = dict(scenario)
        self.mode = mode
        self.recorded = recorded
        self.path: Optional[str] = None
        self.checkpoint_interval = checkpoint_interval
        # Accumulated state (both modes; in replay mode it doubles as the
        # "actual" side of the comparison).
        self.draws: List[List[Any]] = []       # [stream, stream_index, value]
        self.checkpoints: List[List[int]] = []  # [picks, steps, clock_ns, crc]
        self.final: Dict[str, Any] = {}
        self.partial = False                    # replay stopped at failure
        # Rolling scheduler state.
        self._crc = 0
        self._picks = 0
        # Replay cursors.
        self._draw_cursor = 0
        self._ckpt_cursor = 0
        self.divergences: List[Divergence] = []

    # -- constructors ---------------------------------------------------------

    @classmethod
    def record(cls, scenario: Dict[str, Any]) -> "TraceLog":
        return cls(scenario, mode=MODE_RECORD)

    @classmethod
    def replay_of(cls, recorded: "TraceLog") -> "TraceLog":
        return cls(
            recorded.scenario,
            mode=MODE_REPLAY,
            recorded=recorded,
            checkpoint_interval=recorded.checkpoint_interval,
        )

    # -- attachment -----------------------------------------------------------

    def bind_kernel(self, kernel) -> None:
        """Hook the kernel scheduler's pick stream into this trace."""
        kernel.trace = self

    # -- the recording hooks --------------------------------------------------

    def on_pick(self, thread) -> None:
        """Called by ``Kernel._step`` for every scheduled thread pick."""
        token = getattr(thread, "trace_token", None)
        if token is None:
            token = (
                f"{thread.process.global_id}.{thread.tid}.{thread.name}".encode()
            )
            thread.trace_token = token
        self._crc = zlib.crc32(token, self._crc)
        self._picks += 1
        if self._picks % self.checkpoint_interval == 0:
            kernel = thread.process.kernel
            self._checkpoint(kernel.steps_executed, kernel.clock.now_ns)

    def _checkpoint(self, steps: int, clock_ns: int) -> None:
        entry = [self._picks, steps, clock_ns, self._crc]
        if self.mode == MODE_REPLAY:
            index = self._ckpt_cursor
            self._ckpt_cursor += 1
            baseline = self.recorded.checkpoints
            if index < len(baseline) and baseline[index] != entry:
                self._diverge(
                    "sched", f"checkpoint[{index}]", baseline[index], entry
                )
        if len(self.checkpoints) < MAX_CHECKPOINTS:
            self.checkpoints.append(entry)

    def on_draw(self, stream: str, index: int, value: Any) -> None:
        """Called by ``RngStream`` for every pseudo-random draw."""
        entry = [stream, index, value]
        if self.mode == MODE_REPLAY:
            cursor = self._draw_cursor
            self._draw_cursor += 1
            baseline = self.recorded.draws
            if cursor >= len(baseline):
                self._diverge("rng", f"draw[{cursor}] (extra)", None, entry)
            elif baseline[cursor] != entry:
                self._diverge("rng", f"draw[{cursor}]", baseline[cursor], entry)
        self.draws.append(entry)

    def _diverge(self, kind: str, where: str, expected: Any, actual: Any) -> None:
        if len(self.divergences) < MAX_DIVERGENCES:
            self.divergences.append(Divergence(kind, where, expected, actual))

    # -- completion -----------------------------------------------------------

    def finish(self, final: Dict[str, Any], partial: bool = False) -> None:
        """Stamp (record) or verify (replay) the final observables.

        ``partial`` marks a replay-to-failure run that deliberately
        stopped at the failing fault site: the end-state observables
        (final clock, fingerprint, pick totals) are not comparable, so
        only the outcome identity — ``failure_site`` — is verified on
        top of the draws/checkpoints already compared along the way.
        """
        self.partial = partial
        final = dict(final)
        final["picks"] = self._picks
        final["sched_crc"] = self._crc
        final["draws"] = len(self.draws)
        self.final = final
        if self.mode != MODE_REPLAY:
            return
        baseline = self.recorded.final
        if partial:
            keys = ("failure_site",)
        else:
            keys = tuple(sorted(set(baseline) | set(final)))
            if self._draw_cursor < len(self.recorded.draws):
                self._diverge(
                    "rng",
                    "draw count",
                    len(self.recorded.draws),
                    self._draw_cursor,
                )
        for key in keys:
            expected = baseline.get(key)
            actual = final.get(key)
            if expected != actual:
                self._diverge("final", key, expected, actual)

    @property
    def equivalent(self) -> bool:
        """True when a finished replay matched the recording everywhere."""
        return self.mode == MODE_REPLAY and not self.divergences

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FORMAT,
            "scenario": self.scenario,
            "checkpoint_interval": self.checkpoint_interval,
            "draws": self.draws,
            "checkpoints": self.checkpoints,
            "final": self.final,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceLog":
        if payload.get("format") != FORMAT:
            raise ValueError(
                f"not a {FORMAT} trace (format={payload.get('format')!r})"
            )
        trace = cls(
            payload["scenario"],
            mode=MODE_RECORD,
            checkpoint_interval=payload.get(
                "checkpoint_interval", DEFAULT_CHECKPOINT_INTERVAL
            ),
        )
        trace.draws = [list(entry) for entry in payload.get("draws", [])]
        trace.checkpoints = [
            list(entry) for entry in payload.get("checkpoints", [])
        ]
        trace.final = dict(payload.get("final", {}))
        return trace

    def save(self, path: str) -> str:
        text = json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        self.path = str(path)
        return self.path

    @classmethod
    def load(cls, path: str) -> "TraceLog":
        with open(path, "r", encoding="utf-8") as handle:
            trace = cls.from_dict(json.load(handle))
        trace.path = str(path)
        return trace

    def reference(self) -> Dict[str, Any]:
        """The compact pointer a ``blackbox.json`` embeds.

        Carries the scenario spec inline (so a black box alone can
        re-execute its run even if the trace file is lost) plus the path
        the full trace — draws, checkpoints, finals — is saved to.
        """
        return {
            "format": FORMAT,
            "path": self.path,
            "scenario": dict(self.scenario),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceLog {self.mode} draws={len(self.draws)} "
            f"picks={self._picks} divergences={len(self.divergences)}>"
        )


# -- the module scope ----------------------------------------------------------
#
# Mirrors ``repro.obs``'s ACTIVE pattern: RNG streams consult the active
# trace at draw time, so recording works no matter where or when the
# stream object itself was created.

ACTIVE: Optional[TraceLog] = None


@contextmanager
def tracing(trace: Optional[TraceLog]) -> Iterator[Optional[TraceLog]]:
    """Activate ``trace`` for the duration of the block (None = no-op)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = trace
    try:
        yield trace
    finally:
        ACTIVE = previous
