"""``repro.replay`` — deterministic record/replay of the simulated kernel.

The cooperative scheduler and the virtual clock make the whole simulation
deterministic *given its inputs*; the only nondeterminism sources are the
seeded RNG streams (fault-plan probabilistic draws, workload jitter) and,
across code changes, the scheduler's pick order itself.  This package
turns that into an rr-style debugging story ("Engineering Record And
Replay For Deployability", "Lightweight User-Space Record And Replay"):

* ``rng``      — the ``RngRegistry``/``RngStream`` choke point every
  pseudo-random draw in the tree routes through.  Streams are named and
  seeded, so each draw is attributable, and while a ``TraceLog`` is
  active every draw is recorded (record mode) or verified (replay mode).
* ``trace``    — the ``TraceLog``: scenario header, the draw log, rolling
  scheduler pick-order checkpoints (steps, virtual clock, CRC), and the
  final observables (virtual clock, span-tree digest, tree fingerprint
  digest, update outcome).
* ``scenario`` — the re-executable unit: a JSON-serializable spec
  (server x update mode x fault plan x workload) plus ``run_scenario``,
  which boots the world, drives the workload, runs the live update and
  the probe, and stamps the trace.  ``bench faultmatrix`` cells and the
  ``bench fuzz`` harness both run through it.
* ``replayer`` — re-executes a recorded run (from a trace file or from
  the reference embedded in a ``blackbox.json``) and asserts bit-identical
  equivalence: every draw, every scheduler checkpoint, the final virtual
  clock, the span tree, and the tree fingerprint.

``scenario`` and ``replayer`` import servers/workloads/MCR and are loaded
lazily; ``trace`` and ``rng`` are dependency-free leaves so that
``repro.mcr.faults`` can import this package without a cycle.
"""

from __future__ import annotations

from repro.replay.rng import RngRegistry, RngStream
from repro.replay.trace import Divergence, TraceLog, tracing

__all__ = [
    "Divergence",
    "ReplayReport",
    "Replayer",
    "RngRegistry",
    "RngStream",
    "TraceLog",
    "default_spec",
    "replay_path",
    "run_scenario",
    "tracing",
]


def __getattr__(name: str):
    # Lazy: these modules import bench/servers/mcr machinery, which would
    # cycle if pulled in while ``repro.mcr.faults`` is still importing us.
    if name in ("Replayer", "ReplayReport", "replay_path"):
        from repro.replay import replayer

        return getattr(replayer, name)
    if name in ("run_scenario", "default_spec"):
        from repro.replay import scenario

        return getattr(scenario, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
