"""The re-executable unit of record/replay: one server × update × workload.

A **scenario spec** is a small JSON-serializable dict that pins down one
complete run of the simulated world::

    {
        "kind": "update",
        "server": "httpd",            # simple|httpd|nginx|vsftpd|memcache
        "mode": "whole-tree",         # or "rolling"
        "seed": 0,                    # RngRegistry master seed
        "faults": [ ...FaultPlan.to_spec()... ],
        "workload": {"requests": 30, "concurrency": 2, "jitter_ns": 0},
        "holders": 2,                 # parked protocol connections
    }

``run_scenario(spec)`` boots the named server from scratch (fresh kernel,
fresh virtual clock), drives the pre-update workload, parks the held
connections, arms the fault plan, runs the live update, and probes
whichever version survived — exactly the shape of one ``bench
faultmatrix`` cell, which now runs through this function.  Because the
kernel is cooperative and the clock virtual, the *only* nondeterminism
is the seeded RNG draws, so a spec re-executes bit-identically: same
virtual timestamps, same span tree, same fingerprints, same outcome.

Pass a ``TraceLog`` to record the run (or to verify it, in replay mode);
the trace is bound to the kernel before boot, so even startup scheduling
is covered.  ``until_failure=True`` stops right after the update attempt
— no probe, no holder teardown — leaving the world parked at the state
the failure left behind; the replayer uses this for ``--to-failure``.
"""

from __future__ import annotations

import importlib
import zlib
from typing import Any, Dict, Optional

from repro import obs
from repro.kernel.kernel import Kernel
from repro.mcr.config import MCRConfig
from repro.mcr.ctl import McrCtl
from repro.mcr.faults import FaultPlan, TreeFingerprint
from repro.obs.export import to_json
from repro.replay import rng as replay_rng
from repro.replay import trace as replay_trace
from repro.replay.trace import TraceLog
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.workloads.ab import ApacheBench
from repro.workloads.ftpbench import FtpBench
from repro.workloads.holders import ConnectionHolder
from repro.workloads.linebench import LineBench

# Per-server wiring: port, protocol the connection holder speaks (None =
# holders unsupported), and workload/probe defaults.  These mirror the
# historical ``bench faultmatrix`` matrix exactly — the faultmatrix cells
# run through ``run_scenario`` and must keep their recorded behaviour.
SERVERS: Dict[str, Dict[str, Any]] = {
    "simple": {"port": 8080, "holder_kind": None},
    "httpd": {"port": 80, "holder_kind": "http"},
    "nginx": {"port": 8081, "holder_kind": "http"},
    "vsftpd": {"port": 21, "holder_kind": "ftp"},
    "memcache": {"port": 11211, "holder_kind": None},
}

DEFAULT_HELD_CONNECTIONS = 2

_LINE_SCRIPTS: Dict[str, Dict[str, Any]] = {
    "simple": {
        "bench": [("push 5", "ok"), ("push 7", "ok"), ("sum", "sum 12")],
        "probe": [("sum", "sum"), ("version", "version")],
        "clients": 2,
    },
    "memcache": {
        "bench": [
            ("set k1 v1", "STORED"),
            ("set k2 v2", "STORED"),
            ("get k1", "VALUE v1"),
        ],
        "probe": [("get k1", "VALUE v1"), ("nstats", "STATS")],
        "clients": 1,
    },
}


def default_spec(
    server: str,
    mode: str = "whole-tree",
    seed: int = 0,
    faults: Optional[list] = None,
    workload: Optional[Dict[str, Any]] = None,
    holders: Optional[int] = None,
) -> Dict[str, Any]:
    """A faultmatrix-cell-shaped spec for ``server`` (defaults filled in)."""
    if server not in SERVERS:
        raise ValueError(
            f"unknown scenario server {server!r}; choose from {sorted(SERVERS)}"
        )
    info = SERVERS[server]
    if holders is None:
        holders = DEFAULT_HELD_CONNECTIONS if info["holder_kind"] else 0
    return {
        "kind": "update",
        "server": server,
        "mode": mode,
        "seed": seed,
        "faults": list(faults or []),
        "workload": dict(workload or {}),
        "holders": holders,
    }


def _workload_for(server: str, params: Dict[str, Any]):
    port = SERVERS[server]["port"]
    if server in _LINE_SCRIPTS:
        script = _LINE_SCRIPTS[server]
        return LineBench(
            port, script["bench"], clients=params.get("clients", script["clients"])
        )
    if server == "vsftpd":
        return FtpBench(
            port,
            users=params.get("users", 3),
            retrievals=params.get("retrievals", 1),
        )
    return ApacheBench(
        port,
        requests=params.get("requests", 30),
        concurrency=params.get("concurrency", 2),
        jitter_ns=params.get("jitter_ns", 0),
    )


def _probe_for(server: str):
    port = SERVERS[server]["port"]
    if server in _LINE_SCRIPTS:
        return LineBench(port, _LINE_SCRIPTS[server]["probe"])
    if server == "vsftpd":
        return FtpBench(port, users=1, retrievals=1)
    return ApacheBench(port, requests=5, concurrency=1)


class _World:
    __slots__ = ("kernel", "module", "session", "port", "root")

    def __init__(self, kernel, module, session, port, root) -> None:
        self.kernel = kernel
        self.module = module
        self.session = session
        self.port = port
        self.root = root


def _boot(name: str, kernel: Kernel) -> _World:
    """Boot one scenario server into ``kernel`` (trace already bound)."""
    from repro.bench.harness import SERVER_BENCHES, boot_server

    module = importlib.import_module(f"repro.servers.{name}")
    if name in SERVER_BENCHES:
        world = boot_server(name, kernel=kernel)
        return _World(kernel, module, world.session, world.port, world.root)
    module.setup_world(kernel)
    program = module.make_program(1)
    build = BuildConfig.full()
    session = MCRSession(kernel, program, build)
    root = load_program(kernel, program, build=build, session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=400_000)
    return _World(kernel, module, session, SERVERS[name]["port"], root)


class ScenarioOutcome:
    """Everything one scenario run produced, for cells/fuzzing/replay."""

    __slots__ = (
        "spec",
        "kernel",
        "world",
        "collector",
        "plan",
        "result",
        "raised",
        "listener_present",
        "probe_completed",
        "probe_errors",
        "probe_error",
        "trace",
    )

    def __init__(self, spec: Dict[str, Any]) -> None:
        self.spec = spec
        self.kernel: Optional[Kernel] = None
        self.world: Optional[_World] = None
        self.collector: Optional[obs.Collector] = None
        self.plan: Optional[FaultPlan] = None
        self.result = None
        self.raised: Optional[str] = None
        self.listener_present = False
        self.probe_completed = 0
        self.probe_errors = 0
        self.probe_error: Optional[str] = None
        self.trace: Optional[TraceLog] = None


def _final_observables(
    outcome: ScenarioOutcome, until_failure: bool
) -> Dict[str, Any]:
    """The end-of-run digest the trace compares on replay.

    Everything here is derived from virtual-clock-stamped state, so two
    equivalent runs produce equal values: the final virtual clock, a CRC
    of the canonical span-tree JSON, a CRC of the surviving tree's exact
    fingerprint serialization, and the update outcome fields.
    """
    kernel = outcome.kernel
    result = outcome.result
    final: Dict[str, Any] = {
        "clock_ns": kernel.clock.now_ns,
        "steps": kernel.steps_executed,
        "raised": outcome.raised,
        "committed": bool(result.committed) if result else False,
        "rolled_back": bool(result.rolled_back) if result else False,
        "failure_site": result.failure_site if result else None,
        "retries": result.retries if result else 0,
        "rollback_verified": result.rollback_verified if result else None,
        "rollback_failed": bool(result.rollback_failed) if result else False,
        "span_crc": zlib.crc32(
            to_json(
                [root.to_dict() for root in outcome.collector.spans.roots]
            ).encode()
        ),
    }
    if not until_failure:
        final["probe_completed"] = outcome.probe_completed
        final["probe_errors"] = outcome.probe_errors
        survivor = None
        if result is not None and result.committed:
            survivor = result.new_root
        elif outcome.world is not None:
            survivor = outcome.world.root
        fingerprint_crc = 0
        if survivor is not None:
            try:
                fingerprint_crc = zlib.crc32(
                    to_json(
                        TreeFingerprint.capture(kernel, survivor).to_dict()
                    ).encode()
                )
            except BaseException:  # a crashed tree has no fingerprint
                fingerprint_crc = -1
        final["fingerprint_crc"] = fingerprint_crc
    return final


def run_scenario(
    spec: Dict[str, Any],
    trace: Optional[TraceLog] = None,
    trace_path: Optional[str] = None,
    blackbox_path: Optional[str] = None,
    until_failure: bool = False,
    trace_save: str = "always",
) -> ScenarioOutcome:
    """Execute ``spec`` from a cold boot; record/verify through ``trace``.

    The run happens under a fresh ``RngRegistry`` seeded from the spec
    and (when given) the trace, activated for the whole lifetime — boot,
    workload, update, probe — so every draw and every scheduler pick is
    covered.  The update itself runs against a dedicated collector so the
    span tree is available afterwards for the trace digest and for
    ``--export``.  Never raises for fault-plan-induced failures (that is
    the property under test); infrastructure errors do propagate.
    """
    server = spec["server"]
    if server not in SERVERS:
        raise ValueError(
            f"unknown scenario server {server!r}; choose from {sorted(SERVERS)}"
        )
    outcome = ScenarioOutcome(spec)
    outcome.trace = trace
    registry = replay_rng.RngRegistry(int(spec.get("seed", 0)))
    kernel = Kernel()
    outcome.kernel = kernel
    if trace is not None:
        if trace_path:
            trace.path = trace_path
        trace.bind_kernel(kernel)
    collector = obs.Collector(kernel.clock)
    outcome.collector = collector
    with replay_rng.scoped(registry), replay_trace.tracing(trace):
        world = _boot(server, kernel)
        outcome.world = world
        workload = _workload_for(server, spec.get("workload") or {})
        workload.run(kernel)
        holder: Optional[ConnectionHolder] = None
        held = spec.get("holders", 0)
        holder_kind = SERVERS[server]["holder_kind"]
        if holder_kind is not None and held:
            holder = ConnectionHolder(world.port, held, holder_kind)
            holder.establish(kernel)
        plan = FaultPlan.from_spec(spec.get("faults") or [])
        outcome.plan = plan
        config = MCRConfig(
            faults=plan if plan else None,
            blackbox_path=blackbox_path,
            update_mode=spec.get("mode", "whole-tree"),
        )
        ctl = McrCtl(kernel, world.session)
        try:
            outcome.result = ctl.live_update(
                world.module.make_program(2), config=config, collector=collector
            )
        except BaseException as error:  # the property under test: never
            outcome.raised = repr(error)
        outcome.listener_present = kernel.net.listener_for(world.port) is not None
        if not until_failure:
            probe = _probe_for(server)
            try:
                probe.run(kernel)
            except BaseException as error:  # pragma: no cover - diagnostics
                outcome.probe_error = repr(error)
            outcome.probe_completed = probe.completed
            outcome.probe_errors = probe.errors
            if holder is not None:
                holder.finish(kernel)
        if trace is not None:
            trace.finish(
                _final_observables(outcome, until_failure), partial=until_failure
            )
            # ``trace_save="on-blackbox"`` keeps a shared trace path and
            # the shared blackbox path a consistent pair: both files are
            # only (over)written by cells whose update dumped a post-
            # mortem, so the surviving blackbox's embedded reference
            # always points at *its own* recording.
            save = bool(trace.path) and (
                trace_save == "always"
                or (
                    outcome.result is not None
                    and outcome.result.blackbox is not None
                )
            )
            if save:
                trace.save(trace.path)
    return outcome
