"""Exception hierarchy for the MCR reproduction.

Three families:

* ``SimError`` — faults raised by the simulated machine itself (bad
  addresses, allocator misuse, invalid file descriptors).  These model what
  a real kernel/libc would report to a buggy program.
* ``MCRError`` — faults raised by the MCR live-update machinery.  The most
  important subclass is ``ConflictError``: the paper's "conflict", flagged
  by mutable reinitialization or mutable tracing when an update cannot be
  applied automatically.  A conflict aborts the update and triggers a
  rollback, never a crash of the running version.
* ``ProfilerError`` — faults in the quiescence profiler (e.g. the test
  workload never drove a thread to a quiescent state).
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for simulated-machine faults."""


class MemoryFault(SimError):
    """Access to an unmapped or protection-violating simulated address."""

    def __init__(self, address: int, message: str = "") -> None:
        self.address = address
        detail = message or "invalid memory access"
        super().__init__(f"{detail} at 0x{address:x}")


class AllocatorError(SimError):
    """Heap misuse: double free, corrupt chunk, or impossible request."""


class BadFileDescriptor(SimError):
    """Operation on a file descriptor that is not open in this process."""

    def __init__(self, fd: int) -> None:
        self.fd = fd
        super().__init__(f"bad file descriptor: {fd}")


class AddressInUse(SimError):
    """bind() on a port that already has a listening socket."""

    def __init__(self, port: int) -> None:
        self.port = port
        super().__init__(f"address already in use: port {port}")


class WouldBlock(SimError):
    """Internal marker: a syscall would block (kernel parks the thread)."""


class SimTimeout(SimError):
    """A timed blocking call expired without the awaited event."""


class ProcessExit(Exception):
    """Raised inside a simulated thread to unwind on exit()."""

    def __init__(self, status: int = 0) -> None:
        self.status = status
        super().__init__(f"process exit with status {status}")


class MCRError(Exception):
    """Base class for live-update machinery faults."""


class ConflictError(MCRError):
    """An update cannot be applied automatically; rollback is required.

    ``origin`` identifies the detecting subsystem (``"reinit"`` or
    ``"tracing"``); ``subject`` names the offending syscall or object.
    """

    def __init__(self, origin: str, subject: str, detail: str = "") -> None:
        self.origin = origin
        self.subject = subject
        self.detail = detail
        message = f"[{origin}] conflict on {subject}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class RollbackError(MCRError):
    """The rollback path itself failed (should never happen in practice)."""


class QuiescenceTimeout(MCRError):
    """The barrier protocol failed to converge within its deadline."""


class StateTransferError(MCRError):
    """Mutable tracing failed for a reason other than a flagged conflict."""


class ImageError(MCRError):
    """A checkpoint image cannot be trusted: malformed, corrupt, or
    structurally incompatible with the tree it would restore into.

    ``section`` names the failing part of the image (``"magic"``,
    ``"version"``, ``"meta"``, a binary section name, or a structural
    surface like ``"process-tree"``/``"fds"``) so operators know exactly
    what was damaged.  Raised *before* any restore-side mutation — a bad
    image never produces a partial restore.
    """

    def __init__(self, section: str, detail: str = "") -> None:
        self.section = section
        message = f"checkpoint image invalid in section {section!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class PromotionError(MCRError):
    """A warm standby could not be promoted to primary (failover path)."""


class ProfilerError(Exception):
    """Quiescence profiling could not produce a usable report."""
