"""Memory substrate: simulated address spaces and allocators.

This package stands in for the process-memory machinery MCR uses on Linux:

* ``pages`` / ``address_space`` — 64-bit virtual address spaces backed by
  real bytearrays, with page-granular **soft-dirty** tracking (the
  ``/proc/<pid>/clear_refs`` + ``pagemap`` mechanism the paper borrows from
  CRIU for dirty-object detection).
* ``ptmalloc`` — a glibc-style heap allocator with in-band chunk metadata,
  startup-time chunk flagging, deferred frees (global separability), and
  ``malloc_at`` (global reallocation of immutable heap objects).
* ``regions`` — the custom allocation schemes of the evaluated servers:
  nginx-style regions and slabs, Apache-style nested pools.
* ``tags`` — the relocation / data-type tag store maintained by MCR's
  allocator instrumentation.
"""

from repro.mem.address_space import AddressSpace, Mapping
from repro.mem.pages import PAGE_SIZE, PageTracker
from repro.mem.ptmalloc import Chunk, PtMallocHeap
from repro.mem.regions import NestedPool, Region, RegionAllocator, SlabAllocator
from repro.mem.tags import DataTag, TagStore

__all__ = [
    "AddressSpace",
    "Mapping",
    "PAGE_SIZE",
    "PageTracker",
    "Chunk",
    "PtMallocHeap",
    "NestedPool",
    "Region",
    "RegionAllocator",
    "SlabAllocator",
    "DataTag",
    "TagStore",
]
