"""Simulated 64-bit virtual address spaces.

An ``AddressSpace`` holds disjoint ``Mapping``s (data segment, heap, stacks,
anonymous mmaps, "shared libraries"), each backed by a real ``bytearray``.
Pointers stored by simulated programs are genuine 8-byte little-endian
words inside those bytearrays, which is what makes MCR's precise tracing,
conservative likely-pointer scanning, and relocation *real* operations here
rather than mock-ups.

Layout conventions (documented, not load-bearing):

* ``0x0000_0060_0000`` — static data segment(s)
* ``0x0000_0100_0000`` — heap (ptmalloc arena, brk-style growth)
* ``0x0000_7000_0000`` — anonymous mmap region (grows up)
* ``0x0000_7f00_0000`` — shared-library images

fork() clones an address space with copy-on-write *semantics* (we deep-copy
eagerly; the sharing optimisation is irrelevant to MCR's behaviour, and the
paper's RSS overhead figures are reproduced from logical footprint).
"""

from __future__ import annotations

import bisect as _bisect
import struct as _struct
from typing import Dict, Iterator, List, Optional

from repro.errors import MemoryFault
from repro.mem.pages import PAGE_SIZE, PageTracker

DATA_BASE = 0x0000_0060_0000
HEAP_BASE = 0x0000_0100_0000
MMAP_BASE = 0x0000_7000_0000
LIB_BASE = 0x0000_7F00_0000


def _round_up_pages(size: int) -> int:
    return ((size + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE


class Mapping:
    """One contiguous region of simulated memory."""

    def __init__(self, base: int, size: int, name: str, kind: str) -> None:
        self.base = base
        self.size = _round_up_pages(size)
        self.name = name
        self.kind = kind  # "data" | "heap" | "stack" | "mmap" | "lib"
        self.data = bytearray(self.size)
        self.tracker = PageTracker(base, self.size)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def clone(self) -> "Mapping":
        twin = Mapping.__new__(Mapping)
        twin.base = self.base
        twin.size = self.size
        twin.name = self.name
        twin.kind = self.kind
        twin.data = bytearray(self.data)
        twin.tracker = self.tracker.clone()
        return twin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Mapping {self.name} [0x{self.base:x}, 0x{self.end:x}) {self.kind}>"


class AddressSpace:
    """A process's virtual memory: disjoint mappings + access methods."""

    def __init__(self) -> None:
        self._mappings: List[Mapping] = []
        self._bases: List[int] = []  # sorted mapping bases, parallel to _mappings
        self._hit: Optional[Mapping] = None  # last mapping_at result (hot-path cache)
        self._mmap_cursor = MMAP_BASE
        self._lib_cursor = LIB_BASE
        self.soft_dirty_faults = 0  # total write-protect faults taken

    # -- mapping management --------------------------------------------

    def map(
        self,
        size: int,
        address: Optional[int] = None,
        name: str = "anon",
        kind: str = "mmap",
        fixed: bool = False,
    ) -> Mapping:
        """Create a mapping; MAP_FIXED semantics when ``fixed`` is set."""
        size = _round_up_pages(size)
        if fixed:
            if address is None:
                raise ValueError("fixed mapping requires an address")
            base = address
        elif address is not None:
            base = address
        elif kind == "lib":
            base = self._lib_cursor
            self._lib_cursor += size + PAGE_SIZE  # guard page gap
        else:
            base = self._mmap_cursor
            self._mmap_cursor += size + PAGE_SIZE
        if base % PAGE_SIZE:
            raise ValueError(f"mapping base not page-aligned: 0x{base:x}")
        overlapping = self._find_overlap(base, size)
        if overlapping is not None:
            raise MemoryFault(base, f"mapping overlaps {overlapping.name}")
        mapping = Mapping(base, size, name, kind)
        self._insert(mapping)
        return mapping

    def unmap(self, base: int) -> None:
        mapping = self.mapping_at(base)
        if mapping is None or mapping.base != base:
            raise MemoryFault(base, "munmap of unmapped base")
        index = _bisect.bisect_left(self._bases, base)
        del self._mappings[index]
        del self._bases[index]
        self._hit = None

    def _insert(self, mapping: Mapping) -> None:
        index = _bisect.bisect_left(self._bases, mapping.base)
        self._mappings.insert(index, mapping)
        self._bases.insert(index, mapping.base)

    def _find_overlap(self, base: int, size: int) -> Optional[Mapping]:
        end = base + size
        for m in self._mappings:
            if m.base < end and base < m.end:
                return m
        return None

    def mapping_at(self, address: int) -> Optional[Mapping]:
        hit = self._hit
        if hit is not None and hit.base <= address < hit.end:
            return hit
        index = _bisect.bisect_right(self._bases, address) - 1
        if index >= 0:
            mapping = self._mappings[index]
            if address < mapping.end:
                self._hit = mapping
                return mapping
        return None

    def mappings(self, kind: Optional[str] = None) -> Iterator[Mapping]:
        for m in self._mappings:
            if kind is None or m.kind == kind:
                yield m

    def is_mapped(self, address: int) -> bool:
        return self.mapping_at(address) is not None

    # -- byte access (the MemoryView protocol) --------------------------

    def _unmapped_detail(self, address: int) -> str:
        """Describe where an unmapped address sits relative to mappings.

        Reads/writes that start in a guard-page gap between mappings are a
        common instrumentation bug; naming the neighbours turns "read of
        unmapped memory" into something actionable.
        """
        index = _bisect.bisect_right(self._bases, address) - 1
        below = self._mappings[index] if index >= 0 else None
        above = self._mappings[index + 1] if index + 1 < len(self._mappings) else None
        if below is not None and above is not None:
            return (
                f" (in the gap between '{below.name}' ending at 0x{below.end:x} "
                f"and '{above.name}' starting at 0x{above.base:x})"
            )
        if below is not None:
            return f" (0x{address - below.end:x} bytes past '{below.name}' ending at 0x{below.end:x})"
        if above is not None:
            return f" (0x{above.base - address:x} bytes before '{above.name}' at 0x{above.base:x})"
        return " (no mappings exist)"

    def _locate(self, address: int, size: int, verb: str) -> Mapping:
        """The mapping backing ``[address, address+size)``, or MemoryFault."""
        mapping = self.mapping_at(address)
        if mapping is None:
            raise MemoryFault(
                address,
                f"{verb} of unmapped memory{self._unmapped_detail(address)}",
            )
        if address - mapping.base + size > mapping.size:
            raise MemoryFault(address + size, f"{verb} crosses mapping end")
        return mapping

    def read_bytes(self, address: int, size: int) -> bytes:
        mapping = self._locate(address, size, "read")
        offset = address - mapping.base
        return bytes(mapping.data[offset : offset + size])

    def view(self, address: int, size: int) -> memoryview:
        """A zero-copy read window over ``[address, address+size)``.

        The window must lie inside a single mapping.  Callers that decode
        many words (the conservative scanner) cast the view instead of
        materializing per-word ``bytes``.
        """
        mapping = self._locate(address, size, "view")
        offset = address - mapping.base
        return memoryview(mapping.data)[offset : offset + size]

    def write_bytes(self, address: int, data: bytes) -> None:
        mapping = self._locate(address, len(data), "write")
        offset = address - mapping.base
        mapping.data[offset : offset + len(data)] = data
        self.soft_dirty_faults += mapping.tracker.note_write(address, len(data))

    def read_word(self, address: int) -> int:
        mapping = self._locate(address, 8, "read")
        return _struct.unpack_from("<Q", mapping.data, address - mapping.base)[0]

    def write_word(self, address: int, value: int) -> None:
        mapping = self._locate(address, 8, "write")
        _struct.pack_into(
            "<Q", mapping.data, address - mapping.base, value & 0xFFFFFFFFFFFFFFFF
        )
        self.soft_dirty_faults += mapping.tracker.note_write(address, 8)

    # -- soft-dirty interface (CRIU-style) -------------------------------

    def clear_soft_dirty(self) -> None:
        """Mark every page in every mapping soft-clean."""
        for m in self._mappings:
            m.tracker.clear()

    def range_dirty(self, address: int, size: int) -> bool:
        """Does ``[address, address+size)`` overlap any soft-dirty page?"""
        mapping = self.mapping_at(address)
        if mapping is None:
            raise MemoryFault(address, "dirty query on unmapped memory")
        return mapping.tracker.range_dirty(address, size)

    def dirty_page_count(self) -> int:
        return sum(m.tracker.dirty_page_count() for m in self._mappings)

    def total_pages(self) -> int:
        return sum(m.tracker.num_pages for m in self._mappings)

    # -- footprint / fork -------------------------------------------------

    def resident_bytes(self) -> int:
        """Demand-paged footprint: pages ever written (the RSS analogue)."""
        return sum(len(m.tracker.ever_written) * PAGE_SIZE for m in self._mappings)

    def mapped_bytes(self) -> int:
        """Total mapped virtual bytes (the VSZ analogue)."""
        return sum(m.size for m in self._mappings)

    def clone(self) -> "AddressSpace":
        """fork(): duplicate all mappings (eager copy, COW-equivalent)."""
        twin = AddressSpace()
        twin._mmap_cursor = self._mmap_cursor
        twin._lib_cursor = self._lib_cursor
        twin._mappings = [m.clone() for m in self._mappings]
        twin._bases = [m.base for m in twin._mappings]
        return twin
