"""Simulated 64-bit virtual address spaces.

An ``AddressSpace`` holds disjoint ``Mapping``s (data segment, heap, stacks,
anonymous mmaps, "shared libraries"), each backed by a real ``bytearray``.
Pointers stored by simulated programs are genuine 8-byte little-endian
words inside those bytearrays, which is what makes MCR's precise tracing,
conservative likely-pointer scanning, and relocation *real* operations here
rather than mock-ups.

Layout conventions (documented, not load-bearing):

* ``0x0000_0060_0000`` — static data segment(s)
* ``0x0000_0100_0000`` — heap (ptmalloc arena, brk-style growth)
* ``0x0000_7000_0000`` — anonymous mmap region (grows up)
* ``0x0000_7f00_0000`` — shared-library images

fork() clones an address space with copy-on-write *semantics* (we deep-copy
eagerly; the sharing optimisation is irrelevant to MCR's behaviour, and the
paper's RSS overhead figures are reproduced from logical footprint).
"""

from __future__ import annotations

import struct as _struct
from typing import Dict, Iterator, List, Optional

from repro.errors import MemoryFault
from repro.mem.pages import PAGE_SIZE, PageTracker

DATA_BASE = 0x0000_0060_0000
HEAP_BASE = 0x0000_0100_0000
MMAP_BASE = 0x0000_7000_0000
LIB_BASE = 0x0000_7F00_0000


def _round_up_pages(size: int) -> int:
    return ((size + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE


class Mapping:
    """One contiguous region of simulated memory."""

    def __init__(self, base: int, size: int, name: str, kind: str) -> None:
        self.base = base
        self.size = _round_up_pages(size)
        self.name = name
        self.kind = kind  # "data" | "heap" | "stack" | "mmap" | "lib"
        self.data = bytearray(self.size)
        self.tracker = PageTracker(base, self.size)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def clone(self) -> "Mapping":
        twin = Mapping.__new__(Mapping)
        twin.base = self.base
        twin.size = self.size
        twin.name = self.name
        twin.kind = self.kind
        twin.data = bytearray(self.data)
        twin.tracker = PageTracker(self.base, self.size)
        if self.tracker._cleared_once:  # preserve tracking state across fork
            twin.tracker._cleared_once = True
            twin.tracker._dirty = set(self.tracker._dirty)
        twin.tracker.ever_written = set(self.tracker.ever_written)
        return twin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Mapping {self.name} [0x{self.base:x}, 0x{self.end:x}) {self.kind}>"


class AddressSpace:
    """A process's virtual memory: disjoint mappings + access methods."""

    def __init__(self) -> None:
        self._mappings: List[Mapping] = []
        self._mmap_cursor = MMAP_BASE
        self._lib_cursor = LIB_BASE
        self.soft_dirty_faults = 0  # total write-protect faults taken

    # -- mapping management --------------------------------------------

    def map(
        self,
        size: int,
        address: Optional[int] = None,
        name: str = "anon",
        kind: str = "mmap",
        fixed: bool = False,
    ) -> Mapping:
        """Create a mapping; MAP_FIXED semantics when ``fixed`` is set."""
        size = _round_up_pages(size)
        if fixed:
            if address is None:
                raise ValueError("fixed mapping requires an address")
            base = address
        elif address is not None:
            base = address
        elif kind == "lib":
            base = self._lib_cursor
            self._lib_cursor += size + PAGE_SIZE  # guard page gap
        else:
            base = self._mmap_cursor
            self._mmap_cursor += size + PAGE_SIZE
        if base % PAGE_SIZE:
            raise ValueError(f"mapping base not page-aligned: 0x{base:x}")
        overlapping = self._find_overlap(base, size)
        if overlapping is not None:
            raise MemoryFault(base, f"mapping overlaps {overlapping.name}")
        mapping = Mapping(base, size, name, kind)
        self._insert(mapping)
        return mapping

    def unmap(self, base: int) -> None:
        mapping = self.mapping_at(base)
        if mapping is None or mapping.base != base:
            raise MemoryFault(base, "munmap of unmapped base")
        self._mappings.remove(mapping)

    def _insert(self, mapping: Mapping) -> None:
        self._mappings.append(mapping)
        self._mappings.sort(key=lambda m: m.base)

    def _find_overlap(self, base: int, size: int) -> Optional[Mapping]:
        end = base + size
        for m in self._mappings:
            if m.base < end and base < m.end:
                return m
        return None

    def mapping_at(self, address: int) -> Optional[Mapping]:
        for m in self._mappings:
            if m.contains(address):
                return m
        return None

    def mappings(self, kind: Optional[str] = None) -> Iterator[Mapping]:
        for m in self._mappings:
            if kind is None or m.kind == kind:
                yield m

    def is_mapped(self, address: int) -> bool:
        return self.mapping_at(address) is not None

    # -- byte access (the MemoryView protocol) --------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        mapping = self.mapping_at(address)
        if mapping is None:
            raise MemoryFault(address, "read of unmapped memory")
        offset = address - mapping.base
        if offset + size > mapping.size:
            raise MemoryFault(address + size, "read crosses mapping end")
        return bytes(mapping.data[offset : offset + size])

    def write_bytes(self, address: int, data: bytes) -> None:
        mapping = self.mapping_at(address)
        if mapping is None:
            raise MemoryFault(address, "write to unmapped memory")
        offset = address - mapping.base
        if offset + len(data) > mapping.size:
            raise MemoryFault(address + len(data), "write crosses mapping end")
        mapping.data[offset : offset + len(data)] = data
        self.soft_dirty_faults += mapping.tracker.note_write(address, len(data))

    def read_word(self, address: int) -> int:
        return _struct.unpack("<Q", self.read_bytes(address, 8))[0]

    def write_word(self, address: int, value: int) -> None:
        self.write_bytes(address, _struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))

    # -- soft-dirty interface (CRIU-style) -------------------------------

    def clear_soft_dirty(self) -> None:
        """Mark every page in every mapping soft-clean."""
        for m in self._mappings:
            m.tracker.clear()

    def range_dirty(self, address: int, size: int) -> bool:
        """Does ``[address, address+size)`` overlap any soft-dirty page?"""
        mapping = self.mapping_at(address)
        if mapping is None:
            raise MemoryFault(address, "dirty query on unmapped memory")
        return mapping.tracker.range_dirty(address, size)

    def dirty_page_count(self) -> int:
        return sum(m.tracker.dirty_page_count() for m in self._mappings)

    def total_pages(self) -> int:
        return sum(m.tracker.num_pages for m in self._mappings)

    # -- footprint / fork -------------------------------------------------

    def resident_bytes(self) -> int:
        """Demand-paged footprint: pages ever written (the RSS analogue)."""
        return sum(len(m.tracker.ever_written) * PAGE_SIZE for m in self._mappings)

    def mapped_bytes(self) -> int:
        """Total mapped virtual bytes (the VSZ analogue)."""
        return sum(m.size for m in self._mappings)

    def clone(self) -> "AddressSpace":
        """fork(): duplicate all mappings (eager copy, COW-equivalent)."""
        twin = AddressSpace()
        twin._mmap_cursor = self._mmap_cursor
        twin._lib_cursor = self._lib_cursor
        twin._mappings = [m.clone() for m in self._mappings]
        return twin
