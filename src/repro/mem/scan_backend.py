"""Vectorized likely-pointer scan backends (the v2 scan engine seam).

The PR 2 bulk scanner decodes a whole mapping in one ``memoryview.cast``
pass but still runs a Python-level loop per word: bounds check, interval
lookup, tag-alignment check.  This module moves that classification into
a backend that processes the *entire window at once*:

* **numpy** — ``frombuffer`` the window as little-endian ``uint64``,
  reject out-of-bounds words with one vectorized mask, bucket the
  survivors against the interval index with ``searchsorted``, and apply
  containment + tag-alignment rejection as array operations.  Python only
  touches the (rare) final survivors.
* **stdlib** — a pure-Python fallback with no third-party dependency:
  ``memoryview.cast('Q')`` decode plus a tight ``bisect``-driven loop over
  the same prepared arrays.  Selected automatically when numpy is not
  installed (numpy is the optional ``fast`` extra, see ``pyproject.toml``).

The backend is chosen once at import time; ``REPRO_SCAN_BACKEND=stdlib``
(or ``numpy``) overrides the choice, which is how CI exercises the
fallback on hosts that do have numpy.

Both backends classify against a :class:`PreparedScanIndex` — a snapshot
of the interval index's sorted segment arrays — and are equivalence-
tested against the reference per-word scanner: identical likely-pointer
lists, identical ``words_scanned``, and a candidate count identical to
the PR 2 bounds-prefilter loop so ``scan.resolve_calls`` accounting is
byte-for-byte unchanged.
"""

from __future__ import annotations

import bisect as _bisect
import os as _os
import struct as _struct
import sys as _sys
from typing import List, Optional, Sequence, Tuple

_NATIVE_LITTLE_ENDIAN = _sys.byteorder == "little"

try:  # numpy is optional (the ``fast`` extra); the stdlib path is complete.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on bare installs
    _np = None


class PreparedScanIndex:
    """Backend-ready snapshot of one interval index's segment arrays.

    ``starts``/``ends`` are the sorted, disjoint resolvable segments;
    ``bases``/``aligns`` carry each segment's payload (object base, tag
    alignment with ``None`` mapped to 1 = accept any alignment).  The
    numpy backend stores them as ``uint64`` arrays, the stdlib backend as
    plain lists — ``classify`` is the only consumer either way.
    """

    __slots__ = ("backend", "lo", "hi", "starts", "ends", "bases", "aligns")

    def __init__(self, backend, lo, hi, starts, ends, bases, aligns) -> None:
        self.backend = backend
        self.lo = lo
        self.hi = hi
        self.starts = starts
        self.ends = ends
        self.bases = bases
        self.aligns = aligns

    def classify(self, window: memoryview) -> Tuple[List[int], List[int], List[int], int]:
        """Classify every aligned word in ``window``.

        Returns ``(positions, values, target_bases, candidates)`` where
        the first three are parallel lists describing the surviving
        likely pointers (word index within the window, raw value, object
        base) and ``candidates`` counts the words inside the bounds
        window — exactly the words the scalar bounded loop would have
        handed to ``resolve``, so resolve-call accounting is unchanged.
        """
        return self.backend.classify(window, self)


class _StdlibBackend:
    """Pure-stdlib classification: one bisect per in-bounds candidate."""

    name = "stdlib"

    @staticmethod
    def prepare(starts: Sequence[int], ends: Sequence[int], payloads: Sequence[Tuple]) -> PreparedScanIndex:
        lo = starts[0] if starts else 0
        hi = ends[-1] if ends else 0
        bases = [p[0] for p in payloads]
        aligns = [p[2] if p[2] else 1 for p in payloads]
        return PreparedScanIndex(
            _StdlibBackend, lo, hi, list(starts), list(ends), bases, aligns
        )

    @staticmethod
    def classify(window: memoryview, index: PreparedScanIndex):
        if _NATIVE_LITTLE_ENDIAN:
            words = window.cast("Q")
        else:  # pragma: no cover - big-endian hosts
            words = [w for (w,) in _struct.iter_unpack("<Q", window)]
        lo, hi = index.lo, index.hi
        starts, ends = index.starts, index.ends
        bases, aligns = index.bases, index.aligns
        bisect_right = _bisect.bisect_right
        positions: List[int] = []
        values: List[int] = []
        targets: List[int] = []
        candidates = 0
        for position, value in enumerate(words):
            if value < lo or value >= hi:
                continue
            candidates += 1
            i = bisect_right(starts, value) - 1
            if i < 0 or value >= ends[i]:
                continue
            base = bases[i]
            if (value - base) % aligns[i]:
                continue
            positions.append(position)
            values.append(value)
            targets.append(base)
        return positions, values, targets, candidates


class _NumpyBackend:
    """numpy classification: the whole window as one array pipeline."""

    name = "numpy"

    @staticmethod
    def prepare(starts: Sequence[int], ends: Sequence[int], payloads: Sequence[Tuple]) -> PreparedScanIndex:
        lo = starts[0] if starts else 0
        hi = ends[-1] if ends else 0
        return PreparedScanIndex(
            _NumpyBackend,
            lo,
            hi,
            _np.asarray(starts, dtype=_np.uint64),
            _np.asarray(ends, dtype=_np.uint64),
            _np.asarray([p[0] for p in payloads], dtype=_np.uint64),
            _np.asarray([p[2] if p[2] else 1 for p in payloads], dtype=_np.uint64),
        )

    @staticmethod
    def classify(window: memoryview, index: PreparedScanIndex):
        words = _np.frombuffer(window, dtype="<u8")
        in_bounds = (words >= index.lo) & (words < index.hi)
        candidates = int(_np.count_nonzero(in_bounds))
        if not candidates:
            return [], [], [], 0
        positions = _np.nonzero(in_bounds)[0]
        values = words[positions]
        # Predecessor-by-start segment lookup, vectorized: identical to
        # ``bisect_right(starts, v) - 1`` plus the containment check.
        segment = _np.searchsorted(index.starts, values, side="right") - 1
        contained = values < index.ends[segment]
        positions = positions[contained]
        if not positions.size:
            return [], [], [], candidates
        values = values[contained]
        segment = segment[contained]
        bases = index.bases[segment]
        # Tag-assisted rejection: align of 1 (untagged) accepts everything.
        aligned = (values - bases) % index.aligns[segment] == 0
        return (
            positions[aligned].tolist(),
            values[aligned].tolist(),
            bases[aligned].tolist(),
            candidates,
        )


_BACKENDS = {"stdlib": _StdlibBackend}
if _np is not None:
    _BACKENDS["numpy"] = _NumpyBackend


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def get_backend(name: Optional[str] = None):
    """The named backend class, or the active default when ``name`` is None."""
    if name is None:
        return ACTIVE
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown scan backend {name!r} (available: {', '.join(available_backends())})"
        ) from None


def _select_default():
    forced = _os.environ.get("REPRO_SCAN_BACKEND")
    if forced:
        if forced not in _BACKENDS:
            raise RuntimeError(
                f"REPRO_SCAN_BACKEND={forced!r} not available "
                f"(available: {', '.join(available_backends())})"
            )
        return _BACKENDS[forced]
    return _BACKENDS.get("numpy", _StdlibBackend)


ACTIVE = _select_default()


def prepare(
    starts: Sequence[int],
    ends: Sequence[int],
    payloads: Sequence[Tuple],
    backend: Optional[str] = None,
) -> PreparedScanIndex:
    """Snapshot interval-index arrays for the chosen (or active) backend."""
    return get_backend(backend).prepare(starts, ends, payloads)
