"""A ptmalloc-style heap allocator over simulated memory.

Models the pieces of the glibc allocator that MCR's design depends on:

* **In-band chunk metadata** — every chunk carries a 32-byte header written
  into simulated memory (size, flags, allocation-site id, type-tag id).
  MCR's allocator instrumentation "maintain[s] relocation and data type
  tags in in-band allocator metadata" (paper §6); the authoritative tag map
  is the per-process ``TagStore``, with the header mirroring the tag id.
* **Startup flagging & deferred frees** — *global separability* for
  immutable dynamic memory objects: chunks allocated during startup are
  flagged in metadata, and frees issued during startup are deferred until
  ``end_startup()`` so no startup-time address is ever reused (paper §5).
* **``malloc_at``** — *global reallocation*: during mutable
  reinitialization the new version must reallocate immutable heap objects
  at exactly their old-version addresses, which requires "dedicated
  allocator support to enforce a given memory layout in a fresh heap
  state" (paper §5).  ``malloc_at`` carves a chunk at a caller-chosen
  address out of free space.

Allocation policy is deterministic first-fit over a sorted free-interval
list with coalescing on free — deliberately simpler than glibc's bins, but
with identical observable properties for MCR (address stability, reuse
behaviour, in-band metadata placement).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.errors import AllocatorError, MemoryFault
from repro.mem.address_space import AddressSpace, HEAP_BASE, Mapping

HEADER_SIZE = 32
MIN_ALIGN = 16

FLAG_IN_USE = 0x1
FLAG_STARTUP = 0x2
FLAG_INSTRUMENTED = 0x4


def _align_up(value: int, alignment: int = MIN_ALIGN) -> int:
    return (value + alignment - 1) // alignment * alignment


class Chunk:
    """A live heap chunk (header + user area)."""

    __slots__ = ("base", "user_base", "user_size", "total_size", "startup", "site_id")

    def __init__(self, base: int, user_size: int, total_size: int) -> None:
        self.base = base
        self.user_base = base + HEADER_SIZE
        self.user_size = user_size
        self.total_size = total_size
        self.startup = False
        self.site_id = 0

    @property
    def user_end(self) -> int:
        return self.user_base + self.user_size

    def contains(self, address: int) -> bool:
        return self.user_base <= address < self.user_end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Chunk user=0x{self.user_base:x} size={self.user_size}>"


class _FreeList:
    """Sorted, coalescing list of free [start, end) intervals."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []

    def add(self, start: int, end: int) -> None:
        index = bisect.bisect_left(self._starts, start)
        # Coalesce with predecessor.
        if index > 0 and self._ends[index - 1] == start:
            start = self._starts[index - 1]
            del self._starts[index - 1]
            del self._ends[index - 1]
            index -= 1
        # Coalesce with successor.
        if index < len(self._starts) and self._starts[index] == end:
            end = self._ends[index]
            del self._starts[index]
            del self._ends[index]
        self._starts.insert(index, start)
        self._ends.insert(index, end)

    def take_first_fit(self, size: int) -> Optional[int]:
        """Remove and return the start of the first interval >= size."""
        for i, (start, end) in enumerate(zip(self._starts, self._ends)):
            if end - start >= size:
                new_start = start + size
                if new_start == end:
                    del self._starts[i]
                    del self._ends[i]
                else:
                    self._starts[i] = new_start
                return start
        return None

    def take_at(self, start: int, size: int) -> bool:
        """Carve exactly [start, start+size) out of a free interval."""
        end = start + size
        index = bisect.bisect_right(self._starts, start) - 1
        if index < 0:
            return False
        istart, iend = self._starts[index], self._ends[index]
        if start < istart or end > iend:
            return False
        del self._starts[index]
        del self._ends[index]
        if istart < start:
            self.add(istart, start)
        if end < iend:
            self.add(end, iend)
        return True

    def intervals(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(list(self._starts), list(self._ends)))

    def total_free(self) -> int:
        return sum(e - s for s, e in zip(self._starts, self._ends))


class PtMallocHeap:
    """The process heap: deterministic first-fit with in-band metadata."""

    def __init__(
        self,
        space: AddressSpace,
        base: int = HEAP_BASE,
        size: int = 4 * 1024 * 1024,
        name: str = "heap",
    ) -> None:
        self._space = space
        self._mapping: Mapping = space.map(size, address=base, name=name, kind="heap")
        self._free = _FreeList()
        self._free.add(self._mapping.base, self._mapping.end)
        self._chunks: Dict[int, Chunk] = {}  # keyed by user_base
        self._sorted_user_bases: List[int] = []
        self._reserved: Dict[int, int] = {}  # superobject spans: base -> size
        self.startup_mode = True
        self._deferred_frees: List[int] = []
        # Membership view of _deferred_frees: a deferred chunk is already
        # logically dead, so a second free or a realloc of it is the same
        # use-after-free it would be outside startup mode.
        self._deferred: set = set()
        # Counters feeding the cost model and the memory-usage benchmark.
        self.malloc_count = 0
        self.free_count = 0
        self.bytes_allocated = 0

    # -- core API ---------------------------------------------------------

    @property
    def space(self) -> AddressSpace:
        return self._space

    @property
    def base(self) -> int:
        return self._mapping.base

    @property
    def end(self) -> int:
        return self._mapping.end

    def malloc(self, size: int, site_id: int = 0) -> int:
        """Allocate ``size`` user bytes; returns the user address."""
        if size <= 0:
            raise AllocatorError(f"malloc of non-positive size {size}")
        total = _align_up(HEADER_SIZE + size)
        base = self._free.take_first_fit(total)
        if base is None:
            raise AllocatorError(
                f"out of simulated heap ({self._free.total_free()} free, asked {total})"
            )
        return self._install_chunk(base, size, total, site_id)

    def malloc_at(self, user_address: int, size: int, site_id: int = 0) -> int:
        """Allocate ``size`` bytes with the user area at ``user_address``.

        Global-reallocation support: fails with ``AllocatorError`` if the
        required span is not entirely free.
        """
        base = user_address - HEADER_SIZE
        total = _align_up(HEADER_SIZE + size)
        if base < self._mapping.base or base + total > self._mapping.end:
            raise AllocatorError(
                f"malloc_at target 0x{user_address:x} outside heap"
            )
        if not self._free.take_at(base, total):
            raise AllocatorError(
                f"malloc_at target 0x{user_address:x} not free"
            )
        collector = obs.ACTIVE
        if collector is not None:
            collector.counters.incr("alloc.malloc_at")
        return self._install_chunk(base, size, total, site_id)

    def reserve_range(self, address: int, size: int) -> None:
        """Carve a raw address range out of free space (no chunk header).

        Global reallocation uses this to pre-place *superobjects*: coalesced
        spans of immutable old-version heap objects that must reappear at
        identical addresses in the new version (paper §5).  The span is
        excluded from normal allocation until ``release_reserved``.
        """
        if not self._free.take_at(address, size):
            raise AllocatorError(
                f"cannot reserve [0x{address:x}, 0x{address + size:x}): not free"
            )
        self._reserved[address] = size
        collector = obs.ACTIVE
        if collector is not None:
            collector.counters.incr("alloc.reserved_spans")
            collector.counters.incr("alloc.reserved_bytes", size)

    def release_reserved(self, address: int) -> None:
        """Return a reserved superobject span to the free list."""
        size = self._reserved.pop(address, None)
        if size is None:
            raise AllocatorError(f"no reserved range at 0x{address:x}")
        self._free.add(address, address + size)

    def reserved_ranges(self) -> Dict[int, int]:
        return dict(self._reserved)

    def reserved_containing(self, address: int) -> Optional[Tuple[int, int]]:
        for base, size in self._reserved.items():
            if base <= address < base + size:
                return base, size
        return None

    def free(self, user_address: int) -> None:
        chunk = self._chunks.get(user_address)
        if chunk is None:
            raise AllocatorError(f"free of non-allocated address 0x{user_address:x}")
        if self.startup_mode:
            # Global separability: no startup-time address reuse.  The
            # chunk stays resident until end_startup() releases it.
            if user_address in self._deferred:
                raise AllocatorError(
                    f"double free of startup address 0x{user_address:x}"
                )
            self._deferred.add(user_address)
            self._deferred_frees.append(user_address)
            collector = obs.ACTIVE
            if collector is not None:
                collector.counters.incr("alloc.deferred_frees")
            return
        self._release(chunk)

    def realloc(self, user_address: int, new_size: int, site_id: int = 0) -> int:
        chunk = self._chunks.get(user_address)
        if chunk is None:
            raise AllocatorError(f"realloc of non-allocated address 0x{user_address:x}")
        if self.startup_mode and user_address in self._deferred:
            # The chunk is still resident (its free was deferred for
            # separability) but logically dead: growing it would revive a
            # freed object and corrupt the deferred-free accounting.
            raise AllocatorError(
                f"realloc of already-freed startup address 0x{user_address:x}"
            )
        new_addr = self.malloc(new_size, site_id=site_id)
        keep = min(chunk.user_size, new_size)
        self._space.write_bytes(new_addr, self._space.read_bytes(user_address, keep))
        self.free(user_address)
        return new_addr

    # -- startup-phase control ---------------------------------------------

    def end_startup(self) -> None:
        """Leave startup mode: process deferred frees, stop flagging chunks."""
        self.startup_mode = False
        deferred, self._deferred_frees = self._deferred_frees, []
        self._deferred = set()
        for user_address in deferred:
            chunk = self._chunks.get(user_address)
            if chunk is not None:
                self._release(chunk)

    # -- introspection (used by tracing) ------------------------------------

    def find_chunk(self, address: int) -> Optional[Chunk]:
        """The live chunk whose *user area* contains ``address``, if any."""
        index = bisect.bisect_right(self._sorted_user_bases, address) - 1
        if index < 0:
            return None
        chunk = self._chunks.get(self._sorted_user_bases[index])
        if chunk is not None and chunk.contains(address):
            return chunk
        return None

    def chunks(self) -> Iterator[Chunk]:
        for user_base in list(self._sorted_user_bases):
            chunk = self._chunks.get(user_base)
            if chunk is not None:
                yield chunk

    def live_chunk_count(self) -> int:
        return len(self._chunks)

    def live_bytes(self) -> int:
        return sum(c.user_size for c in self._chunks.values())

    # -- internals ----------------------------------------------------------

    def _install_chunk(self, base: int, size: int, total: int, site_id: int) -> int:
        chunk = Chunk(base, size, total)
        chunk.startup = self.startup_mode
        chunk.site_id = site_id
        self._chunks[chunk.user_base] = chunk
        bisect.insort(self._sorted_user_bases, chunk.user_base)
        self._write_header(chunk)
        self.malloc_count += 1
        self.bytes_allocated += size
        collector = obs.ACTIVE
        if collector is not None:
            collector.counters.incr("alloc.mallocs")
            collector.counters.incr("alloc.bytes", size)
            if chunk.startup:
                collector.counters.incr("alloc.startup_chunks")
        return chunk.user_base

    def _release(self, chunk: Chunk) -> None:
        del self._chunks[chunk.user_base]
        index = bisect.bisect_left(self._sorted_user_bases, chunk.user_base)
        del self._sorted_user_bases[index]
        # Scrub the user area so stale pointer words cannot mislead the
        # conservative scanner (glibc similarly clobbers freed chunks with
        # list links; scrubbing is the conservative-GC-friendly variant).
        self._space.write_bytes(chunk.base, b"\x00" * chunk.total_size)
        self._free.add(chunk.base, chunk.base + chunk.total_size)
        self.free_count += 1
        collector = obs.ACTIVE
        if collector is not None:
            collector.counters.incr("alloc.frees")

    def _write_header(self, chunk: Chunk) -> None:
        flags = FLAG_IN_USE | (FLAG_STARTUP if chunk.startup else 0)
        header = (
            chunk.total_size.to_bytes(8, "little")
            + flags.to_bytes(8, "little")
            + chunk.site_id.to_bytes(8, "little")
            + (0).to_bytes(8, "little")  # tag id mirror, set by TagStore
        )
        self._space.write_bytes(chunk.base, header)

    def set_header_tag(self, chunk: Chunk, tag_id: int) -> None:
        """Mirror the TagStore tag id into in-band metadata."""
        self._space.write_bytes(chunk.base + 24, tag_id.to_bytes(8, "little"))

    def clone_into(self, space: AddressSpace) -> "PtMallocHeap":
        """Rebind this heap's bookkeeping onto a forked address space.

        The mapping bytes were already cloned by ``AddressSpace.clone``;
        this copies the allocator's logical state (chunks, free list,
        counters) so the child process can keep allocating independently.
        """
        twin = PtMallocHeap.__new__(PtMallocHeap)
        twin._space = space
        twin._mapping = space.mapping_at(self._mapping.base)
        if twin._mapping is None:
            raise MemoryFault(self._mapping.base, "heap mapping missing in clone")
        twin._free = _FreeList()
        for start, end in self._free.intervals():
            twin._free.add(start, end)
        twin._chunks = {}
        for user_base, chunk in self._chunks.items():
            copy = Chunk(chunk.base, chunk.user_size, chunk.total_size)
            copy.startup = chunk.startup
            copy.site_id = chunk.site_id
            twin._chunks[user_base] = copy
        twin._sorted_user_bases = list(self._sorted_user_bases)
        twin._reserved = dict(self._reserved)
        twin.startup_mode = self.startup_mode
        twin._deferred_frees = list(self._deferred_frees)
        twin._deferred = set(self._deferred)
        twin.malloc_count = self.malloc_count
        twin.free_count = self.free_count
        twin.bytes_allocated = self.bytes_allocated
        return twin
