"""Relocation and data-type tags.

The tag store is MCR's "precise" half: static instrumentation registers a
tag for every static object, and the allocator wrappers register a tag for
every *instrumented* dynamic allocation (malloc — or region allocations in
the ``nginx_reg`` configuration).  An object with a tag can be precisely
traced and type-transformed; an object without one is opaque and falls to
the conservative scanner.

Tags are the paper's chosen precise-tracing representation ("in-memory data
type tags associated to the individual state objects", §6), preferred over
compiler-generated traversal functions because MCR must "seamlessly switch
from precise to conservative tracing as needed at runtime".  The paper also
notes the tags are deliberately space-inefficient; the memory-usage
benchmark charges their footprint through ``overhead_bytes``.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional

from repro.types.descriptors import TypeDesc

# Per-tag logical footprint, matching the paper's remark that tags are
# space-hungry: address + type id + site + origin + relocation info.
TAG_OVERHEAD_BYTES = 64

ORIGIN_STATIC = "static"
ORIGIN_HEAP = "heap"
ORIGIN_REGION = "region"
ORIGIN_STACK = "stack"
ORIGIN_LIB = "lib"


class DataTag:
    """Type + relocation metadata for one state object."""

    __slots__ = ("address", "type", "origin", "site", "tag_id", "name")

    def __init__(
        self,
        address: int,
        type_: TypeDesc,
        origin: str,
        site: str = "",
        tag_id: int = 0,
        name: str = "",
    ) -> None:
        self.address = address
        self.type = type_
        self.origin = origin
        self.site = site  # allocation site / symbol name, for cross-version pairing
        self.tag_id = tag_id
        self.name = name

    @property
    def end(self) -> int:
        return self.address + self.type.size

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataTag 0x{self.address:x} {self.type.name} {self.origin}/{self.site}>"


class TagStore:
    """All tags of one process, with containing-address lookup."""

    def __init__(self) -> None:
        self._by_address: Dict[int, DataTag] = {}
        self._sorted_addresses: List[int] = []
        self._next_tag_id = 1
        self.register_count = 0  # instrumentation work done (cost model)

    def register(
        self,
        address: int,
        type_: TypeDesc,
        origin: str,
        site: str = "",
        name: str = "",
    ) -> DataTag:
        if address in self._by_address:
            # Re-registration replaces (e.g. realloc'd slot reused).
            self.unregister(address)
        tag = DataTag(address, type_, origin, site, self._next_tag_id, name)
        self._next_tag_id += 1
        self._by_address[address] = tag
        bisect.insort(self._sorted_addresses, address)
        self.register_count += 1
        return tag

    def tags_in_range(self, start: int, end: int) -> List[DataTag]:
        """Tags whose object starts in [start, end), ascending by address."""
        import bisect as _bisect

        lo = _bisect.bisect_left(self._sorted_addresses, start)
        hi = _bisect.bisect_left(self._sorted_addresses, end)
        return [self._by_address[a] for a in self._sorted_addresses[lo:hi]]

    def unregister_range(self, start: int, end: int) -> int:
        """Drop every tag whose object starts in [start, end).

        Used when a custom-allocator region is destroyed wholesale: the
        instrumented wrapper registered per-allocation tags that must die
        with the backing block.
        """
        import bisect as _bisect

        lo = _bisect.bisect_left(self._sorted_addresses, start)
        hi = _bisect.bisect_left(self._sorted_addresses, end)
        doomed = self._sorted_addresses[lo:hi]
        for address in doomed:
            del self._by_address[address]
        del self._sorted_addresses[lo:hi]
        return len(doomed)

    def unregister(self, address: int) -> Optional[DataTag]:
        tag = self._by_address.pop(address, None)
        if tag is not None:
            index = bisect.bisect_left(self._sorted_addresses, address)
            del self._sorted_addresses[index]
        return tag

    def lookup(self, address: int) -> Optional[DataTag]:
        """Tag whose object starts exactly at ``address``."""
        return self._by_address.get(address)

    def find_containing(self, address: int) -> Optional[DataTag]:
        """Tag whose object's storage contains ``address``."""
        index = bisect.bisect_right(self._sorted_addresses, address) - 1
        if index < 0:
            return None
        tag = self._by_address[self._sorted_addresses[index]]
        if tag.contains(address):
            return tag
        return None

    def tags(self, origin: Optional[str] = None) -> Iterator[DataTag]:
        for address in list(self._sorted_addresses):
            tag = self._by_address.get(address)
            if tag is not None and (origin is None or tag.origin == origin):
                yield tag

    def __len__(self) -> int:
        return len(self._by_address)

    def overhead_bytes(self) -> int:
        """Logical metadata footprint (memory-usage benchmark input)."""
        return len(self._by_address) * TAG_OVERHEAD_BYTES

    def clone(self) -> "TagStore":
        """fork(): tags are per-process state and follow the address space."""
        twin = TagStore()
        twin._next_tag_id = self._next_tag_id
        twin.register_count = self.register_count
        for address, tag in self._by_address.items():
            twin._by_address[address] = DataTag(
                tag.address, tag.type, tag.origin, tag.site, tag.tag_id, tag.name
            )
        twin._sorted_addresses = list(self._sorted_addresses)
        return twin
