"""Page-granular soft-dirty tracking.

Models the Linux soft-dirty bit mechanism (``/proc/<pid>/clear_refs`` write
of ``4`` + the soft-dirty bit in ``pagemap``) that MCR uses to find the data
structures modified after startup:

* ``clear()`` marks every page soft-clean and "write-protects" it.
* The first write into a clean page takes a simulated minor fault (counted,
  so the cost model can charge it), marks the page soft-dirty, and
  "unprotects" it — subsequent writes are free, exactly like the kernel
  mechanism.
* ``dirty_pages()`` reports the pages written since the last ``clear()``.

Before the first ``clear()`` every page is considered dirty (matching the
kernel default where soft-dirty bits start set for new mappings).
"""

from __future__ import annotations

from typing import Dict, Iterator, Set

PAGE_SIZE = 4096


def page_index(address: int) -> int:
    return address // PAGE_SIZE


def page_base(address: int) -> int:
    return (address // PAGE_SIZE) * PAGE_SIZE


class PageTracker:
    """Soft-dirty bookkeeping for one contiguous mapping."""

    def __init__(self, base: int, size: int) -> None:
        if base % PAGE_SIZE:
            raise ValueError(f"mapping base not page-aligned: 0x{base:x}")
        self.base = base
        self.size = size
        self.num_pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        self._cleared_once = False
        self._dirty: Set[int] = set()
        # Pages ever written (never reset): the demand-paging resident set.
        self.ever_written: Set[int] = set()
        self.fault_count = 0  # simulated write-protect faults taken
        # Monotonic write sequencing, independent of the soft-dirty bits
        # (which belong to the update-time dirty filter and must not be
        # cleared by scan bookkeeping).  ``write_seq`` advances on every
        # write; ``_page_seq`` records the last sequence number that
        # touched each page, so incremental scans can ask "was this range
        # written since sequence N?" without disturbing soft-dirty state.
        self.write_seq = 0
        self._page_seq: Dict[int, int] = {}

    def clear(self) -> None:
        """Mark all pages soft-clean (CRIU-style ``clear_refs``)."""
        self._cleared_once = True
        self._dirty.clear()

    def clone(self) -> "PageTracker":
        """fork(): duplicate all tracking state, preserving semantics.

        ``_cleared_once``, the soft-dirty set, the resident set, the fault
        count, and the write sequencing all carry over — a forked child
        must observe exactly the dirty-page state of its parent, or the
        update-time dirty filter would treat inherited writes as clean.
        """
        twin = PageTracker(self.base, self.size)
        twin._cleared_once = self._cleared_once
        twin._dirty = set(self._dirty)
        twin.ever_written = set(self.ever_written)
        twin.fault_count = self.fault_count
        twin.write_seq = self.write_seq
        twin._page_seq = dict(self._page_seq)
        return twin

    def note_write(self, address: int, size: int) -> int:
        """Record a write of ``size`` bytes at ``address``.

        Returns the number of write-protect faults this write took (pages
        that transitioned clean -> dirty), for cost accounting.
        """
        first_touch = (address - self.base) // PAGE_SIZE
        last_touch = (address + max(size, 1) - 1 - self.base) // PAGE_SIZE
        self.ever_written.update(range(first_touch, last_touch + 1))
        self.write_seq += 1
        seq = self.write_seq
        page_seq = self._page_seq
        for page in range(first_touch, last_touch + 1):
            page_seq[page] = seq
        if not self._cleared_once:
            return 0
        first = (address - self.base) // PAGE_SIZE
        last = (address + max(size, 1) - 1 - self.base) // PAGE_SIZE
        faults = 0
        for page in range(first, last + 1):
            if page not in self._dirty:
                self._dirty.add(page)
                faults += 1
        self.fault_count += faults
        return faults

    def is_dirty(self, address: int) -> bool:
        """Is the page containing ``address`` soft-dirty?"""
        if not self._cleared_once:
            return True
        return (address - self.base) // PAGE_SIZE in self._dirty

    def range_dirty(self, address: int, size: int) -> bool:
        """Is any page overlapping ``[address, address+size)`` dirty?"""
        if not self._cleared_once:
            return True
        first = (address - self.base) // PAGE_SIZE
        last = (address + max(size, 1) - 1 - self.base) // PAGE_SIZE
        return any(page in self._dirty for page in range(first, last + 1))

    def range_written_since(self, address: int, size: int, seq: int) -> bool:
        """Was any page of ``[address, address+size)`` written after ``seq``?

        The incremental-scan validity test: ``seq`` is a ``write_seq``
        value captured at scan time.  Unlike the soft-dirty bits this
        never needs clearing, so repeated scans can layer on top of the
        update-time dirty filter without interfering with it.
        """
        first = (address - self.base) // PAGE_SIZE
        last = (address + max(size, 1) - 1 - self.base) // PAGE_SIZE
        get = self._page_seq.get
        return any(get(page, 0) > seq for page in range(first, last + 1))

    def pages_written_since(self, seq: int) -> Iterator[int]:
        """Yield base addresses of pages written after write-sequence ``seq``.

        The incremental-checkpoint delta source: a full image records each
        mapping's ``write_seq``, and the next checkpoint ships exactly the
        pages this yields — layered on the same sequencing the incremental
        scan cache uses, so neither consumer disturbs the soft-dirty bits.
        """
        for page in sorted(self._page_seq):
            if self._page_seq[page] > seq:
                yield self.base + page * PAGE_SIZE

    def dirty_pages(self) -> Iterator[int]:
        """Yield base addresses of dirty pages (all pages if never cleared)."""
        if not self._cleared_once:
            for page in range(self.num_pages):
                yield self.base + page * PAGE_SIZE
            return
        for page in sorted(self._dirty):
            yield self.base + page * PAGE_SIZE

    def dirty_page_count(self) -> int:
        if not self._cleared_once:
            return self.num_pages
        return len(self._dirty)
