"""Custom allocation schemes used by the evaluated servers.

The paper's evaluation hinges on custom allocators (§8): *"nginx uses slabs
and regions, Apache httpd uses nested regions"*.  Objects handed out by an
uninstrumented custom allocator are invisible to MCR's per-chunk type tags —
the whole backing block is one opaque object, so every pointer into it (and
every pointer-looking word inside it) becomes a *likely pointer* and the
targets become immutable.  Instrumenting the region allocator (the
``nginx_reg`` configuration of Tables 2/3) registers a tag per region
allocation, trading allocator overhead for tracing precision.

Three schemes, per Berger et al. "Reconsidering custom memory allocation":

* ``RegionAllocator`` — bump allocation in large blocks, freed all at once.
* ``SlabAllocator``   — size-class slabs with per-slot reuse.
* ``NestedPool``      — hierarchical regions (Apache APR pools): destroying
  a pool destroys its children.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro import obs
from repro.errors import AllocatorError
from repro.mem.ptmalloc import PtMallocHeap

# Allocation-site ids for backing blocks, so tracing can recognise that a
# heap chunk is a custom-allocator block rather than a direct malloc object.
SITE_REGION_BLOCK = 0x7E6001
SITE_SLAB_BLOCK = 0x7E6002
SITE_POOL_BLOCK = 0x7E6003


def _align_up(value: int, alignment: int = 16) -> int:
    return (value + alignment - 1) // alignment * alignment


# In-band block header: [next-block ptr][first-child ptr][next-sibling ptr]
# — the APR-style chaining that makes pool memory *reachable* from program
# roots, which is how conservative tracing discovers it (Table 2).
BLOCK_HEADER_SIZE = 24


class Region:
    """One bump-allocated region: a backing block plus a cursor.

    The first ``BLOCK_HEADER_SIZE`` bytes hold the in-memory chain links.
    """

    __slots__ = ("base", "size", "cursor")

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.size = size
        self.cursor = base + (BLOCK_HEADER_SIZE if size >= BLOCK_HEADER_SIZE else 0)

    @property
    def end(self) -> int:
        return self.base + self.size

    def remaining(self) -> int:
        return self.end - self.cursor

    def bump(self, size: int) -> Optional[int]:
        aligned = _align_up(self.cursor)
        if aligned + size > self.end:
            return None
        self.cursor = aligned + size
        return aligned


class RegionAllocator:
    """nginx-style region (pool) allocator: blocks from the heap, bump inside."""

    def __init__(self, heap: PtMallocHeap, block_size: int = 16 * 1024) -> None:
        self._heap = heap
        self._block_size = block_size
        self._regions: List[Region] = []
        self.alloc_count = 0
        self.bytes_allocated = 0

    def _append_block(self, size: int) -> Region:
        base = self._heap.malloc(size, site_id=SITE_REGION_BLOCK)
        region = Region(base, size)
        if self._regions:
            # Chain in memory: previous block's header points to this one.
            self._heap.space.write_word(self._regions[-1].base, base)
        self._regions.append(region)
        obs.incr("alloc.region.blocks")
        return region

    def ensure_block(self) -> Region:
        """Make sure at least one (possibly empty) backing block exists."""
        if not self._regions:
            return self._append_block(self._block_size)
        return self._regions[0]

    @property
    def first_block_base(self) -> int:
        """Address of the first block (what a root pointer should hold)."""
        return self.ensure_block().base

    def alloc(self, size: int) -> int:
        """Bump-allocate ``size`` bytes; grows by whole blocks as needed."""
        if size <= 0:
            raise AllocatorError(f"region alloc of non-positive size {size}")
        obs.incr("alloc.region.allocs")
        if size > self._block_size - BLOCK_HEADER_SIZE - 16:
            # Oversized allocations get a dedicated block (nginx "large");
            # the block carries the chain header plus alignment slack.
            region = self._append_block(size + BLOCK_HEADER_SIZE + 16)
            address = region.bump(size)
            self.alloc_count += 1
            self.bytes_allocated += size
            return address
        for region in self._regions:
            address = region.bump(size)
            if address is not None:
                self.alloc_count += 1
                self.bytes_allocated += size
                return address
        region = self._append_block(self._block_size)
        address = region.bump(size)
        if address is None:  # pragma: no cover - block_size >= size by now
            raise AllocatorError("fresh region cannot satisfy request")
        self.alloc_count += 1
        self.bytes_allocated += size
        return address

    def destroy(self) -> None:
        """Release every backing block at once (region semantics)."""
        for region in self._regions:
            self._heap.free(region.base)
        self._regions.clear()

    def blocks(self) -> Iterator[Region]:
        return iter(self._regions)

    def block_count(self) -> int:
        return len(self._regions)


class SlabAllocator:
    """nginx-style slab allocator: power-of-two size classes, slot reuse."""

    SIZE_CLASSES = (16, 32, 64, 128, 256, 512, 1024, 2048)

    def __init__(self, heap: PtMallocHeap, slab_size: int = 32 * 1024) -> None:
        self._heap = heap
        self._slab_size = slab_size
        self._slabs: Dict[int, List[Region]] = {c: [] for c in self.SIZE_CLASSES}
        self._free_slots: Dict[int, List[int]] = {c: [] for c in self.SIZE_CLASSES}
        self.alloc_count = 0
        self.free_count = 0

    def _size_class(self, size: int) -> int:
        for cls in self.SIZE_CLASSES:
            if size <= cls:
                return cls
        raise AllocatorError(f"slab request too large: {size}")

    def alloc(self, size: int) -> int:
        cls = self._size_class(size)
        obs.incr("alloc.slab.allocs")
        free_slots = self._free_slots[cls]
        if free_slots:
            self.alloc_count += 1
            return free_slots.pop()
        for slab in self._slabs[cls]:
            address = slab.bump(cls)
            if address is not None:
                self.alloc_count += 1
                return address
        base = self._heap.malloc(self._slab_size, site_id=SITE_SLAB_BLOCK)
        slab = Region(base, self._slab_size)
        self._slabs[cls].append(slab)
        address = slab.bump(cls)
        if address is None:  # pragma: no cover - fresh slab always fits
            raise AllocatorError("fresh slab cannot satisfy request")
        self.alloc_count += 1
        return address

    def free(self, address: int, size: int) -> None:
        cls = self._size_class(size)
        self._free_slots[cls].append(address)
        self.free_count += 1
        obs.incr("alloc.slab.frees")

    def slab_count(self) -> int:
        return sum(len(slabs) for slabs in self._slabs.values())


class NestedPool:
    """Apache-style nested pool: child pools die with their parent."""

    def __init__(
        self,
        heap: PtMallocHeap,
        parent: Optional["NestedPool"] = None,
        block_size: int = 8 * 1024,
        name: str = "pool",
    ) -> None:
        self._heap = heap
        self._region = _PoolRegionAllocator(heap, block_size)
        self.parent = parent
        self.name = name
        self.children: List["NestedPool"] = []
        self._destroyed = False
        # Pools are reachable data: the first block exists from birth and
        # the parent/sibling chain lives in the block headers (APR-style).
        self._region.ensure_block()
        if parent is not None:
            parent.children.append(self)
            parent._rewrite_child_chain()

    @property
    def first_block_base(self) -> int:
        return self._region.first_block_base

    def _rewrite_child_chain(self) -> None:
        """Mirror the Python child list into in-memory header links."""
        space = self._heap.space
        head = self._region.first_block_base
        previous: Optional[int] = None
        for child in self.children:
            child_base = child.first_block_base
            if previous is None:
                space.write_word(head + 8, child_base)  # first-child slot
            else:
                space.write_word(previous + 16, child_base)  # sibling slot
            previous = child_base
        if previous is None:
            space.write_word(head + 8, 0)
        else:
            space.write_word(previous + 16, 0)

    def create_child(self, name: str = "child") -> "NestedPool":
        if self._destroyed:
            raise AllocatorError(f"allocation from destroyed pool {self.name}")
        return NestedPool(self._heap, parent=self, block_size=self._region._block_size, name=name)

    def alloc(self, size: int) -> int:
        if self._destroyed:
            raise AllocatorError(f"allocation from destroyed pool {self.name}")
        return self._region.alloc(size)

    def destroy(self) -> None:
        """Destroy this pool and, recursively, all of its children."""
        if self._destroyed:
            return
        for child in list(self.children):
            child.destroy()
        self._region.destroy()
        self._destroyed = True
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
            if not self.parent._destroyed:
                self.parent._rewrite_child_chain()

    def clear(self) -> None:
        """Release everything but keep the pool usable (apr_pool_clear)."""
        for child in list(self.children):
            child.destroy()
        self._region.destroy()
        self._region.ensure_block()
        self._rewrite_child_chain()
        if self.parent is not None and not self.parent._destroyed:
            self.parent._rewrite_child_chain()

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def blocks(self) -> Iterator[Region]:
        return self._region.blocks()

    def total_block_count(self) -> int:
        return self._region.block_count() + sum(
            child.total_block_count() for child in self.children
        )


class _PoolRegionAllocator(RegionAllocator):
    """Region allocator whose backing blocks are tagged as pool blocks."""

    def alloc(self, size: int) -> int:
        address = super().alloc(size)
        return address

    def _new_block_site(self) -> int:  # pragma: no cover - documentation hook
        return SITE_POOL_BLOCK
