"""Command-line front end: ``python -m repro <command>``.

Commands:

* ``demo [server]``          — boot a server, serve traffic, live-update it,
  and print the operator report (default: simple).
* ``profile [server]``       — run the quiescence profiler and print the
  per-thread report (default: all four evaluation servers).
* ``bench <experiment>``     — regenerate one paper table/figure
  (table1, table2, table3, figure3, spec, memusage, updatetime,
  ablations, scanperf, faultmatrix, fleetroll, failover, migrate,
  fuzz, or ``all``); ``--json`` also writes ``BENCH_<experiment>.json``
  through ``repro.obs.export``; ``--smoke`` shrinks faultmatrix,
  updatetime, fleetroll, scanperf, failover, migrate, and fuzz to
  their CI subsets; ``--seed N`` reseeds the fuzzer's scenario draws.
* ``replay <path>``          — re-execute a recorded trace (or the trace
  referenced by a ``blackbox.json``) and assert bit-identical
  equivalence; ``--to-failure`` stops at the failing fault site and
  prints the open span stack; ``--export BASE`` writes a Chrome trace
  and a JSON report of the replayed update.
* ``trace [server]``         — live-update a server under an installed
  observability collector and print the span tree + counters;
  ``--export FILE`` writes a Chrome ``trace_event`` JSON (Perfetto).
* ``metrics [server]``       — live-update a server *mid-flight* under its
  demo workload and print the client-perceived verdict: latency
  histogram percentiles, the blackout interval, the SLO verdict, and a
  Prometheus text exposition; ``--json`` writes ``METRICS_<server>.json``.
* ``status [server]``        — boot a server and print ``mcr-ctl status``.
* ``checkpoint [server]``    — boot a server, serve a little traffic, and
  write a durable checkpoint image (``--out FILE``, ``--serve N``).
* ``restore <image>``        — restore a checkpoint image written by
  ``checkpoint`` (possibly by *another* Python process), fingerprint-
  verify the restored tree against the image, and optionally resume it
  and serve ``--serve N`` requests to prove the graft is live.
"""

from __future__ import annotations

import argparse
import sys as _host_sys
from typing import List, Optional

SERVERS = ("simple", "httpd", "nginx", "vsftpd", "opensshd", "memcache")


def _server_module(name: str):
    import importlib

    if name not in SERVERS:
        raise SystemExit(f"unknown server {name!r}; choose from {', '.join(SERVERS)}")
    return importlib.import_module(f"repro.servers.{name}")


def _boot(name: str):
    from repro.kernel import Kernel
    from repro.runtime.instrument import BuildConfig
    from repro.runtime.libmcr import MCRSession
    from repro.runtime.program import load_program

    module = _server_module(name)
    kernel = Kernel()
    module.setup_world(kernel)
    program = module.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=400_000)
    return kernel, module, program, session


def _demo_workload(name: str, port: int):
    """A small deterministic workload for demo/trace runs."""
    from repro.workloads.ab import ApacheBench
    from repro.workloads.ftpbench import FtpBench
    from repro.workloads.sshsuite import SshSuite

    if name in ("simple", "httpd", "nginx", "memcache"):
        paths = {"simple": "sum", "memcache": "anykey"}
        return ApacheBench(port, requests=40, concurrency=2,
                           path=paths.get(name, "/index.html"))
    if name == "vsftpd":
        return FtpBench(port, users=3, retrievals=1)
    return SshSuite(port, sessions=3, commands=2)


def cmd_demo(args) -> int:
    from repro.mcr.ctl import McrCtl
    from repro.mcr.diagnostics import describe_update

    name = args.server
    kernel, module, program, session = _boot(name)
    port = program.metadata.get("port")
    print(f"{name} v1 running on simulated port {port}")
    workload = _demo_workload(name, port)
    workload.run(kernel)
    print(f"workload done: {workload.completed} ops, {workload.errors} errors")
    ctl = McrCtl(kernel, session)
    result = ctl.live_update(module.make_program(2))
    print()
    print(describe_update(result))
    return 0 if result.committed else 1


def cmd_profile(args) -> int:
    from repro.kernel import Kernel
    from repro.mcr.quiescence.profiler import QuiescenceProfiler
    from repro.workloads import profiles

    targets = [args.server] if args.server else ["httpd", "nginx", "vsftpd", "opensshd"]
    workloads = {
        "simple": lambda: profiles.web_profile(8080, big_path="/index.html"),
        "httpd": lambda: profiles.web_profile(80),
        "nginx": lambda: profiles.web_profile(8081),
        "vsftpd": lambda: profiles.ftp_profile(21),
        "opensshd": lambda: profiles.ssh_profile(22),
        "memcache": lambda: profiles.web_profile(11211, big_path="bigkey"),
    }
    for name in targets:
        module = _server_module(name)
        kernel = Kernel()
        module.setup_world(kernel)
        if name == "simple":
            kernel.fs.create("/srv/www/index.html", b"x")
        report = QuiescenceProfiler(kernel).profile(
            module.make_program(1), workloads[name]()
        )
        print(report.render())
        print()
    return 0


def _bench_table1():
    from repro.bench.table1 import render, run_table1

    results = run_table1()
    return results, render(results)


def _bench_table2():
    from repro.bench.table2 import render, run_table2

    results = run_table2()
    return results, render(results)


def _bench_table3():
    from repro.bench.table3 import render, run_table3

    results = run_table3()
    return results, render(results)


def _bench_figure3():
    from repro.bench.figure3 import render, run_figure3

    results = run_figure3(connection_counts=(0, 5, 10, 20))
    payload = {s: [p.to_dict() for p in points] for s, points in results.items()}
    return payload, render(results)


def _bench_spec():
    from repro.bench.spec2006 import render, run_spec

    results = run_spec()
    return results, render(results)


def _bench_memusage():
    from repro.bench.memusage import render, run_memusage

    results = run_memusage()
    return results, render(results)


def _bench_updatetime(smoke: bool = False):
    from repro.bench.updatetime import SCALE_WORKERS, render, run_updatetime

    # The smoke subset must include nginx: CI asserts the rolling-vs-
    # whole-tree blackout comparison for both httpd and nginx.  The
    # 1000-worker scaled rolling row only runs in the full bench.
    results = run_updatetime(
        servers=("httpd", "nginx", "memcache") if smoke
        else ("httpd", "nginx", "vsftpd", "opensshd", "memcache"),
        scale_workers=None if smoke else SCALE_WORKERS,
    )
    return results, render(results)


def _bench_ablations():
    from repro.bench.ablations import render_all, run_all

    results = run_all()
    return results, render_all(results)


def _bench_scanperf(smoke: bool = False):
    from repro.bench.scanperf import (
        SCALING_WORKER_COUNTS,
        SMOKE_WORKER_COUNTS,
        render,
        run_scanperf,
    )

    # Smoke trims the scaling curve to its small worker counts; the
    # committed artifact (non-smoke) sweeps the full range up to 1000.
    results = run_scanperf(
        worker_counts=SMOKE_WORKER_COUNTS if smoke else SCALING_WORKER_COUNTS
    )
    return results, render(results)


def _bench_fleetroll(smoke: bool = False):
    from repro.bench.fleetroll import render, run_fleetroll

    results = run_fleetroll(smoke=smoke)
    return results, render(results)


def _bench_failover(smoke: bool = False):
    from repro.bench.failover import render, run_failover

    # Fault-drill post-mortems derive from the bench's own artifact
    # naming (BENCH_failover.json), never a hard-coded repo-root
    # blackbox path a run would dirty the checkout with.
    results = run_failover(
        smoke=smoke, blackbox_path="BENCH_failover_blackbox.json"
    )
    return results, render(results)


def _bench_migrate(smoke: bool = False):
    from repro.bench.migrate import render, run_migrate

    results = run_migrate(
        smoke=smoke, blackbox_path="BENCH_migrate_blackbox.json"
    )
    return results, render(results)


def _bench_fuzz(smoke: bool = False, seed: int = 0):
    from repro.bench.fuzz import render, run_fuzz

    results = run_fuzz(smoke=smoke, seed=seed)
    return results, render(results)


def _bench_faultmatrix(smoke: bool = False):
    from repro.bench.faultmatrix import render, run_faultmatrix

    # Each failed cell overwrites the blackbox (and its paired replay
    # trace), so the artifact that survives the run is the post-mortem of
    # the *last* injected fault — CI uploads it and checks it names the
    # site that fired.  The path derives from the bench's own artifact
    # naming (BENCH_faultmatrix.json) so concurrent bench runs in one
    # directory don't stomp a shared hard-coded blackbox.json.
    results = run_faultmatrix(
        smoke=smoke, blackbox_path="BENCH_faultmatrix_blackbox.json"
    )
    return results, render(results)


# Experiment name -> callable returning (json-serializable results, text).
BENCH_EXPERIMENTS = {
    "table1": _bench_table1,
    "table2": _bench_table2,
    "table3": _bench_table3,
    "figure3": _bench_figure3,
    "spec": _bench_spec,
    "memusage": _bench_memusage,
    "updatetime": _bench_updatetime,
    "ablations": _bench_ablations,
    "scanperf": _bench_scanperf,
    "faultmatrix": _bench_faultmatrix,
    "fleetroll": _bench_fleetroll,
    "failover": _bench_failover,
    "migrate": _bench_migrate,
    "fuzz": _bench_fuzz,
}


def cmd_bench(args) -> int:
    names = list(BENCH_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    exit_code = 0
    for name in names:
        if name == "fuzz":
            results, text = BENCH_EXPERIMENTS[name](
                smoke=getattr(args, "smoke", False),
                seed=getattr(args, "seed", 0),
            )
            if not results["all_ok"]:
                exit_code = 1
        elif name in ("faultmatrix", "updatetime", "fleetroll", "scanperf",
                      "failover", "migrate"):
            results, text = BENCH_EXPERIMENTS[name](
                smoke=getattr(args, "smoke", False)
            )
        else:
            results, text = BENCH_EXPERIMENTS[name]()
        print(text, end="\n\n")
        if args.json:
            from repro.bench.reporting import write_bench_json

            path = write_bench_json(name, results)
            print(f"wrote {path}")
    return exit_code


def cmd_trace(args) -> int:
    from repro import obs
    from repro.mcr.ctl import McrCtl
    from repro.obs.export import chrome_trace, write_json
    from repro.obs.spans import render_tree

    name = args.server
    kernel, module, program, session = _boot(name)
    port = program.metadata.get("port")
    ctl = McrCtl(kernel, session)
    with obs.collecting(kernel.clock) as collector:
        _demo_workload(name, port).run(kernel)
        result = ctl.live_update(module.make_program(2))
    status = "committed" if result.committed else "ROLLED BACK"
    print(f"{name}: update {status} in {result.total_ms():.2f} ms")
    if result.retries:
        print(f"quiescence retries: {result.retries}")
    if result.rolled_back:
        print(
            f"failure site: {result.failure_site or 'unknown'}; "
            f"old-version fingerprint verified: {result.rollback_verified}"
        )
    if result.spans is not None:
        print()
        print(render_tree(result.spans))
    counters = collector.counters.snapshot()
    print()
    print(f"counters ({len(counters)}):")
    for key, value in counters.items():
        print(f"  {key:<32} {value}")
    print()
    print(
        f"events: {collector.events.emitted} emitted, "
        f"{collector.events.dropped} dropped"
    )
    if args.export:
        try:
            write_json(
                args.export, chrome_trace(collector, process_name=f"repro:{name}")
            )
        except OSError as error:
            print(f"cannot write {args.export}: {error}", file=_host_sys.stderr)
            return 1
        print(f"wrote {args.export}")
    return 0 if result.committed else 1


def cmd_metrics(args) -> int:
    """Mid-flight live update under the demo workload; report the client view."""
    from repro import obs
    from repro.mcr.ctl import McrCtl
    from repro.obs.export import write_json
    from repro.obs.metrics import prometheus_text
    from repro.servers.common import ClientPerceived

    name = args.server
    kernel, module, program, session = _boot(name)
    port = program.metadata.get("port")
    workload = _demo_workload(name, port)
    ctl = McrCtl(kernel, session)
    # Warm up only a fraction of the workload's requests, so the update
    # fires genuinely mid-flight and in-flight clients span the blackout
    # (ApacheBench issues 40 requests; the FTP/SSH drivers only ~9-12).
    warm = min(8, max(2, getattr(workload, "requests", 16) // 5))
    with obs.collecting(kernel.clock) as collector:
        clients = workload(kernel)
        kernel.run(until=lambda: workload.latency.count >= warm, max_steps=2_000_000)
        result = ctl.live_update(module.make_program(2))
        kernel.run(
            until=lambda: all(c.exited for c in clients), max_steps=5_000_000
        )
    budget_ns = getattr(session.config, "downtime_budget_ns", 1_000_000_000)
    perceived = ClientPerceived.measure(workload.latency, budget_ns=budget_ns)
    result.client = perceived
    summary = perceived.to_dict()
    status = "committed" if result.committed else "ROLLED BACK"
    print(f"{name}: update {status} in {result.total_ms():.2f} ms")
    print(
        f"client-perceived: {summary['requests']} requests, "
        f"p50 {summary['p50_ms']:.2f} ms, p95 {summary['p95_ms']:.2f} ms, "
        f"p99 {summary['p99_ms']:.2f} ms, max {summary['max_ms']:.2f} ms"
    )
    verdict = "met" if summary["slo_ok"] else "violated"
    print(
        f"blackout: {summary['blackout_ms']:.2f} ms "
        f"(budget {summary['downtime_budget_ms']:.0f} ms) -> SLO {verdict}"
    )
    print()
    print(prometheus_text(counters=collector.counters, metrics=collector.metrics))
    if args.json:
        path = f"METRICS_{name}.json"
        write_json(
            path,
            {
                "server": name,
                "committed": result.committed,
                "workload_errors": workload.errors,
                "client": summary,
                "slo_verdict": verdict,
                "metrics": collector.metrics.snapshot(),
            },
        )
        print(f"wrote {path}")
    return 0 if result.committed else 1


def cmd_replay(args) -> int:
    """Re-execute a recorded run and assert bit-identical equivalence.

    Accepts either a trace file or a ``blackbox.json`` with an embedded
    trace reference (every black box dumped while a recording was active
    carries one).  ``--to-failure`` stops at the failing fault site and
    prints the open span stack there; ``--export`` additionally writes a
    Chrome trace of the replayed update plus a JSON report.
    """
    from repro.replay import replay_path

    try:
        report = replay_path(
            args.path, to_failure=args.to_failure, export=args.export
        )
    except (OSError, ValueError) as error:
        print(f"cannot replay {args.path}: {error}", file=_host_sys.stderr)
        return 2
    print(report.render())
    return 0 if report.equivalent else 1


def cmd_status(args) -> int:
    from repro.mcr.ctl import McrCtl

    kernel, module, program, session = _boot(args.server)
    for key, value in McrCtl(kernel, session).status().items():
        print(f"{key}: {value}")
    return 0


def cmd_checkpoint(args) -> int:
    """Boot a server, mutate it with traffic, write a durable image."""
    from repro.checkpoint import checkpoint_node, write_image
    from repro.fleet.node import Node

    node = Node.boot(args.server)
    if args.serve:
        node.serve(args.serve)
        node.drain()
        # Let workers process client EOFs and release connection fds:
        # restore validation refuses an image holding fds a fresh boot
        # cannot reproduce.
        node.settle(2_000_000)
    image = checkpoint_node(node)
    size = write_image(image, args.out)
    digest = image.fingerprint.summary()
    print(f"{args.server}: image {image.image_id} "
          f"({size} bytes on disk, {image.total_bytes()} section bytes)")
    print(f"served {node.completed} requests before capture "
          f"({node.lost} lost)")
    print(f"fingerprint: {digest}")
    print(f"wrote {args.out}")
    node.teardown()
    return 0


def cmd_restore(args) -> int:
    """Restore a durable image — in a different process than wrote it."""
    from repro.checkpoint import read_image, restore_image, resume_node
    from repro.errors import ImageError

    try:
        image = read_image(args.path)
        node = restore_image(image)
    except ImageError as error:
        print(f"cannot restore {args.path}: {error}", file=_host_sys.stderr)
        return 2
    verified = node.fingerprint().matches(image.fingerprint)
    state = "verified" if verified else "MISMATCH"
    print(f"{image.server}: restored image {image.image_id} -> "
          f"fingerprint {state}")
    exit_code = 0 if verified else 1
    if args.serve and verified:
        resume_node(node)
        node.serve(args.serve)
        node.drain()
        print(f"resumed: served {node.completed}/{args.serve} requests "
              f"({node.lost} lost)")
        if node.completed != args.serve:
            exit_code = 1
    node.teardown()
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mutable Checkpoint-Restart reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="boot, serve, live-update, report")
    demo.add_argument("server", nargs="?", default="simple", choices=SERVERS)
    demo.set_defaults(fn=cmd_demo)

    profile = subparsers.add_parser("profile", help="run the quiescence profiler")
    profile.add_argument("server", nargs="?", default=None, choices=SERVERS)
    profile.set_defaults(fn=cmd_profile)

    bench = subparsers.add_parser("bench", help="regenerate a paper experiment")
    bench.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "figure3", "spec",
                 "memusage", "updatetime", "ablations", "scanperf",
                 "faultmatrix", "fleetroll", "failover", "migrate",
                 "fuzz", "all"],
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="also write BENCH_<experiment>.json for each experiment",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="faultmatrix/updatetime/fleetroll/scanperf/failover/migrate/"
             "fuzz: run the reduced CI subset",
    )
    bench.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fuzz: master seed for the randomized scenario draws",
    )
    bench.set_defaults(fn=cmd_bench)

    trace = subparsers.add_parser(
        "trace", help="live-update under a collector; print spans + counters"
    )
    trace.add_argument("server", nargs="?", default="simple", choices=SERVERS)
    trace.add_argument(
        "--export",
        metavar="FILE",
        default=None,
        help="write a Chrome trace_event JSON (open in Perfetto)",
    )
    trace.set_defaults(fn=cmd_trace)

    metrics = subparsers.add_parser(
        "metrics",
        help="mid-flight live update; print the client-perceived verdict",
    )
    metrics.add_argument("server", nargs="?", default="simple", choices=SERVERS)
    metrics.add_argument(
        "--json",
        action="store_true",
        help="also write METRICS_<server>.json",
    )
    metrics.set_defaults(fn=cmd_metrics)

    replay = subparsers.add_parser(
        "replay",
        help="re-execute a recorded trace (or a blackbox's embedded trace) "
             "and assert bit-identical equivalence",
    )
    replay.add_argument(
        "path", help="a *.trace.json file or a blackbox JSON with a trace ref"
    )
    replay.add_argument(
        "--to-failure",
        action="store_true",
        dest="to_failure",
        help="stop at the failing fault site; print the open span stack there",
    )
    replay.add_argument(
        "--export",
        metavar="BASE",
        default=None,
        help="write BASE.chrome.json (Perfetto) and BASE.report.json",
    )
    replay.set_defaults(fn=cmd_replay)

    status = subparsers.add_parser("status", help="mcr-ctl status of a server")
    status.add_argument("server", nargs="?", default="simple", choices=SERVERS)
    status.set_defaults(fn=cmd_status)

    checkpoint = subparsers.add_parser(
        "checkpoint", help="serve traffic, then write a durable image"
    )
    checkpoint.add_argument("server", nargs="?", default="simple", choices=SERVERS)
    checkpoint.add_argument(
        "--out", metavar="FILE", default="checkpoint.img",
        help="where to write the image (default: checkpoint.img)",
    )
    checkpoint.add_argument(
        "--serve", type=int, default=8, metavar="N",
        help="requests to serve before capture (mutates server state)",
    )
    checkpoint.set_defaults(fn=cmd_checkpoint)

    restore = subparsers.add_parser(
        "restore",
        help="restore a durable image (cross-process) and verify it",
    )
    restore.add_argument("path", help="image file written by `repro checkpoint`")
    restore.add_argument(
        "--serve", type=int, default=0, metavar="N",
        help="after verification, resume the node and serve N requests",
    )
    restore.set_defaults(fn=cmd_restore)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
