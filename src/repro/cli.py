"""Command-line front end: ``python -m repro <command>``.

Commands:

* ``demo [server]``          — boot a server, serve traffic, live-update it,
  and print the operator report (default: simple).
* ``profile [server]``       — run the quiescence profiler and print the
  per-thread report (default: all four evaluation servers).
* ``bench <experiment>``     — regenerate one paper table/figure
  (table1, table2, table3, figure3, spec, memusage, updatetime,
  ablations, or ``all``).
* ``status [server]``        — boot a server and print ``mcr-ctl status``.
"""

from __future__ import annotations

import argparse
import sys as _host_sys
from typing import List, Optional

SERVERS = ("simple", "httpd", "nginx", "vsftpd", "opensshd", "memcache")


def _server_module(name: str):
    import importlib

    if name not in SERVERS:
        raise SystemExit(f"unknown server {name!r}; choose from {', '.join(SERVERS)}")
    return importlib.import_module(f"repro.servers.{name}")


def _boot(name: str):
    from repro.kernel import Kernel
    from repro.runtime.instrument import BuildConfig
    from repro.runtime.libmcr import MCRSession
    from repro.runtime.program import load_program

    module = _server_module(name)
    kernel = Kernel()
    module.setup_world(kernel)
    program = module.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    load_program(kernel, program, build=BuildConfig.full(), session=session)
    kernel.run(until=lambda: session.startup_complete, max_steps=400_000)
    return kernel, module, program, session


def cmd_demo(args) -> int:
    from repro.mcr.ctl import McrCtl
    from repro.mcr.diagnostics import describe_update
    from repro.workloads.ab import ApacheBench
    from repro.workloads.ftpbench import FtpBench
    from repro.workloads.sshsuite import SshSuite

    name = args.server
    kernel, module, program, session = _boot(name)
    port = program.metadata.get("port")
    print(f"{name} v1 running on simulated port {port}")
    if name in ("simple", "httpd", "nginx", "memcache"):
        paths = {"simple": "sum", "memcache": "anykey"}
        workload = ApacheBench(port, requests=40, concurrency=2,
                               path=paths.get(name, "/index.html"))
    elif name == "vsftpd":
        workload = FtpBench(port, users=3, retrievals=1)
    else:
        workload = SshSuite(port, sessions=3, commands=2)
    workload.run(kernel)
    print(f"workload done: {workload.completed} ops, {workload.errors} errors")
    ctl = McrCtl(kernel, session)
    result = ctl.live_update(module.make_program(2))
    print()
    print(describe_update(result))
    return 0 if result.committed else 1


def cmd_profile(args) -> int:
    from repro.kernel import Kernel
    from repro.mcr.quiescence.profiler import QuiescenceProfiler
    from repro.workloads import profiles

    targets = [args.server] if args.server else ["httpd", "nginx", "vsftpd", "opensshd"]
    workloads = {
        "simple": lambda: profiles.web_profile(8080, big_path="/index.html"),
        "httpd": lambda: profiles.web_profile(80),
        "nginx": lambda: profiles.web_profile(8081),
        "vsftpd": lambda: profiles.ftp_profile(21),
        "opensshd": lambda: profiles.ssh_profile(22),
        "memcache": lambda: profiles.web_profile(11211, big_path="bigkey"),
    }
    for name in targets:
        module = _server_module(name)
        kernel = Kernel()
        module.setup_world(kernel)
        if name == "simple":
            kernel.fs.create("/srv/www/index.html", b"x")
        report = QuiescenceProfiler(kernel).profile(
            module.make_program(1), workloads[name]()
        )
        print(report.render())
        print()
    return 0


def cmd_bench(args) -> int:
    name = args.experiment
    if name in ("table1", "all"):
        from repro.bench.table1 import render, run_table1

        print(render(run_table1()), end="\n\n")
    if name in ("table2", "all"):
        from repro.bench.table2 import render, run_table2

        print(render(run_table2()), end="\n\n")
    if name in ("table3", "all"):
        from repro.bench.table3 import render, run_table3

        print(render(run_table3()), end="\n\n")
    if name in ("figure3", "all"):
        from repro.bench.figure3 import render, run_figure3

        print(render(run_figure3(connection_counts=(0, 5, 10, 20))), end="\n\n")
    if name in ("spec", "all"):
        from repro.bench.spec2006 import render, run_spec

        print(render(run_spec()), end="\n\n")
    if name in ("memusage", "all"):
        from repro.bench.memusage import render, run_memusage

        print(render(run_memusage()), end="\n\n")
    if name in ("updatetime", "all"):
        from repro.bench.updatetime import render, run_updatetime

        print(render(run_updatetime()), end="\n\n")
    if name in ("ablations", "all"):
        from repro.bench.ablations import render_all

        print(render_all(), end="\n\n")
    return 0


def cmd_status(args) -> int:
    from repro.mcr.ctl import McrCtl

    kernel, module, program, session = _boot(args.server)
    for key, value in McrCtl(kernel, session).status().items():
        print(f"{key}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mutable Checkpoint-Restart reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="boot, serve, live-update, report")
    demo.add_argument("server", nargs="?", default="simple", choices=SERVERS)
    demo.set_defaults(fn=cmd_demo)

    profile = subparsers.add_parser("profile", help="run the quiescence profiler")
    profile.add_argument("server", nargs="?", default=None, choices=SERVERS)
    profile.set_defaults(fn=cmd_profile)

    bench = subparsers.add_parser("bench", help="regenerate a paper experiment")
    bench.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "figure3", "spec",
                 "memusage", "updatetime", "ablations", "all"],
    )
    bench.set_defaults(fn=cmd_bench)

    status = subparsers.add_parser("status", help="mcr-ctl status of a server")
    status.add_argument("server", nargs="?", default="simple", choices=SERVERS)
    status.set_defaults(fn=cmd_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
