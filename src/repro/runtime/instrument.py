"""Build configurations and the static instrumentation pass.

The paper builds MCR-enabled programs by linking with ``libmcr.a`` and
running an LLVM link-time pass; the pass (i) wraps profiled blocking call
sites for unblockification, (ii) registers relocation/data-type tags for
static objects, and (iii) rewrites allocator call sites to tag-maintaining
wrappers.  Our equivalent operates on ``Program`` objects at load time.

``BuildConfig`` mirrors the *cumulative* configurations of Table 3:

=============  ==========================================================
``baseline()``  no MCR at all (the normalization denominator)
``unblock()``   unblockification only
``sinstr()``    + static instrumentation (tags, allocator wrappers)
``dinstr()``    + dynamic instrumentation (library allocation tracking,
                process/thread metadata)
``qdet()``      + quiescence-detection hooks — the full MCR configuration
=============  ==========================================================

``instrument_regions`` is the orthogonal ``nginx_reg`` knob (custom region
allocator instrumentation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mem.tags import ORIGIN_STATIC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.process import Process
    from repro.runtime.program import Program


class BuildConfig:
    """Which MCR instrumentation layers a binary was built/run with."""

    def __init__(
        self,
        unblockify: bool = False,
        static_instr: bool = False,
        dynamic_instr: bool = False,
        qdet: bool = False,
        instrument_regions: bool = False,
    ) -> None:
        self.unblockify = unblockify
        self.static_instr = static_instr
        self.dynamic_instr = dynamic_instr
        self.qdet = qdet
        self.instrument_regions = instrument_regions

    @property
    def mcr_enabled(self) -> bool:
        """Any layer present => libmcr.so must be preloaded."""
        return self.unblockify or self.static_instr or self.dynamic_instr or self.qdet

    @property
    def updatable(self) -> bool:
        """Can this build actually take a live update? Needs everything."""
        return self.unblockify and self.static_instr and self.dynamic_instr and self.qdet

    # -- the Table-3 ladder -------------------------------------------------

    @classmethod
    def baseline(cls) -> "BuildConfig":
        return cls()

    @classmethod
    def unblock(cls) -> "BuildConfig":
        return cls(unblockify=True)

    @classmethod
    def sinstr(cls, instrument_regions: bool = False) -> "BuildConfig":
        return cls(unblockify=True, static_instr=True, instrument_regions=instrument_regions)

    @classmethod
    def dinstr(cls, instrument_regions: bool = False) -> "BuildConfig":
        return cls(
            unblockify=True,
            static_instr=True,
            dynamic_instr=True,
            instrument_regions=instrument_regions,
        )

    @classmethod
    def qdet(cls, instrument_regions: bool = False) -> "BuildConfig":
        return cls(
            unblockify=True,
            static_instr=True,
            dynamic_instr=True,
            qdet=True,
            instrument_regions=instrument_regions,
        )

    full = qdet  # alias: the complete MCR configuration

    def label(self) -> str:
        if self.qdet:
            return "+QDet"
        if self.dynamic_instr:
            return "+DInstr"
        if self.static_instr:
            return "+SInstr"
        if self.unblockify:
            return "Unblock"
        return "baseline"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BuildConfig {self.label()}{' +regions' if self.instrument_regions else ''}>"


def apply_static_instrumentation(process: "Process", program: "Program") -> None:
    """Register relocation/data-type tags for every static object.

    The static pass knows every global's symbol name and declared type —
    exactly what it emits as tags in the paper.  Char buffers, unions, and
    other opaque-typed globals still get a tag (their *extent* is known);
    their contents simply route to the conservative scanner.
    """
    for symbol in process.symbols:
        process.tags.register(
            symbol.address,
            symbol.type,
            ORIGIN_STATIC,
            site=symbol.name,
            name=symbol.name,
        )
