"""Build- and run-time glue between simulated programs and MCR.

* ``cruntime``   — the "libc" for program data: typed malloc/free, struct
  field access, strings, stack variables (all operating on simulated
  memory, so state is real bytes with real pointers).
* ``program``    — the program abstraction the "linker" consumes: global
  variable declarations, entry point, annotations, version metadata.
* ``instrument`` — the static instrumentation pass (mcr.llvm + libmcr.a
  analogue): build configurations, static tags, allocator wrappers,
  unblockification of profiled quiescent points.
* ``libmcr``     — the per-process dynamic runtime (libmcr.so analogue):
  syscall interception, startup recording/replay hooks, dirty tracking.
"""

from repro.runtime.cruntime import CRuntime, SharedLib
from repro.runtime.program import GlobalVar, Program, load_program
from repro.runtime.instrument import BuildConfig

__all__ = [
    "CRuntime",
    "SharedLib",
    "GlobalVar",
    "Program",
    "load_program",
    "BuildConfig",
]
