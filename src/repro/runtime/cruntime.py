"""The "libc" for simulated program data.

``CRuntime`` gives server code typed access to simulated memory: heap
allocation (with MCR's allocator instrumentation applied according to the
process build configuration), struct field reads/writes, C strings, and
stack-resident variables.  All state created through it is real bytes in
the process's address space — pointers are 8-byte words that mutable
tracing later reads back.

Allocator instrumentation semantics (paper §6):

* ``static_instr``    — malloc call sites are wrapped; each allocation
  registers a relocation/data-type tag keyed by the *allocation-site call
  stack*, and pays ``tag_cost_ns`` of virtual time (this is the dominant
  MCR overhead in Table 3).
* ``dynamic_instr``   — shared-library allocations are tracked too.
* ``instrument_regions`` — the ``nginx_reg`` configuration: region
  allocations also register tags (more precision, more overhead).

Without instrumentation an allocation has no tag and is opaque to precise
tracing — the conservative scanner takes over.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AllocatorError
from repro.kernel.process import Process, Thread, call_stack_id
from repro.mem.address_space import Mapping
from repro.mem.regions import NestedPool, RegionAllocator, SlabAllocator
from repro.mem.tags import ORIGIN_HEAP, ORIGIN_LIB, ORIGIN_REGION, ORIGIN_STACK
from repro.types import codec
from repro.types.descriptors import ArrayType, CHAR, StructType, TypeDesc

STACK_BASE = 0x0000_5000_0000
STACK_SIZE = 64 * 1024
STACK_SPACING = 0x100000

# Virtual-time costs of allocator paths (ns).  Ratios, not absolutes,
# matter: instrumented allocation is a few times a plain one, which is what
# produces the Table-3 overhead on allocation-heavy programs.
ALLOC_BASE_COST_NS = 90
ALLOC_TAG_COST_NS = 320
ALLOC_DINSTR_COST_NS = 45   # +DInstr: shared-library allocation tracking hook
REGION_ALLOC_COST_NS = 35
REGION_TAG_COST_NS = 300
FREE_COST_NS = 60


class StackArea:
    """A thread's stack: bump allocator plus the overlay metadata list.

    Models the paper's "linked list of overlay stack metadata nodes" for
    tracking stack variables, which MCR limits to functions active at
    quiescent points.
    """

    def __init__(self, mapping: Mapping) -> None:
        self.mapping = mapping
        self.cursor = mapping.base
        # (name, address, type) overlay nodes, innermost last.
        self.overlay: List[Tuple[str, int, TypeDesc]] = []

    def mark(self) -> Tuple[int, int]:
        return self.cursor, len(self.overlay)

    def release(self, mark: Tuple[int, int]) -> None:
        self.cursor, overlay_len = mark
        del self.overlay[overlay_len:]

    def alloc(self, name: str, type_: TypeDesc) -> int:
        aligned = (self.cursor + type_.align - 1) // type_.align * type_.align
        if aligned + type_.size > self.mapping.end:
            raise AllocatorError(f"stack overflow allocating {name}")
        self.cursor = aligned + type_.size
        self.overlay.append((name, aligned, type_))
        return aligned


class SharedLib:
    """A simulated shared library image with its own untagged state.

    Libraries are mapped in the lib address range; allocations inside them
    carry *no* type tags by default (uninstrumented), so program pointers
    into library state become likely pointers — the paper's Table 2 "Lib"
    columns.  MCR's prelink step remaps a library at the same base address
    in the new version (see ``repro.mcr.reinit.realloc``).
    """

    def __init__(self, process: Process, name: str, size: int = 64 * 1024, base: Optional[int] = None) -> None:
        self.name = name
        self.process = process
        fixed = base is not None
        self.mapping = process.space.map(size, address=base, name=f"lib:{name}", kind="lib", fixed=fixed)
        self.cursor = self.mapping.base
        self.alloc_count = 0

    @property
    def base(self) -> int:
        return self.mapping.base

    def alloc(self, size: int, align: int = 16) -> int:
        aligned = (self.cursor + align - 1) // align * align
        if aligned + size > self.mapping.end:
            raise AllocatorError(f"lib {self.name} out of space")
        self.cursor = aligned + size
        self.alloc_count += 1
        runtime = self.process.runtime
        if runtime is not None and runtime.build.dynamic_instr:
            # +DInstr tracks library allocations (paper Table 3 note), but
            # as *untyped* objects: the library's internal layout is still
            # unknown, so the object stays conservative.
            from repro.types.descriptors import OpaqueType

            self.process.tags.register(
                aligned, OpaqueType(size), ORIGIN_LIB, site=f"lib:{self.name}"
            )
        return aligned


class CRuntime:
    """Typed memory operations for one process."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self._stacks: Dict[int, StackArea] = {}
        # Skip past any stack mappings inherited across fork.
        self._next_stack_base = STACK_BASE
        for mapping in process.space.mappings(kind="stack"):
            candidate = mapping.base + STACK_SPACING
            if candidate > self._next_stack_base:
                self._next_stack_base = candidate

    # -- configuration shortcuts ------------------------------------------------

    @property
    def _build(self):
        runtime = self.process.runtime
        return runtime.build if runtime is not None else None

    def _charge(self, cost_ns: int) -> None:
        self.process.kernel.clock.advance(cost_ns)

    # -- heap -------------------------------------------------------------------

    def malloc(self, size: int, thread: Optional[Thread] = None) -> int:
        """Untyped allocation (no tag even when instrumented: unknown type)."""
        self._charge(ALLOC_BASE_COST_NS)
        site = self._site_id(thread)
        return self.process.heap.malloc(size, site_id=site)

    def malloc_typed(self, thread: Thread, type_: TypeDesc) -> int:
        """Allocation through an instrumented call site.

        With static instrumentation enabled, the wrapper performs the
        paper's per-callsite allocation type analysis (here: the declared
        type) and registers a data-type tag.  With dynamic instrumentation
        on top, the allocation is additionally run through the
        library-allocation tracking hook.
        """
        self._charge(ALLOC_BASE_COST_NS)
        site = self._site_id(thread)
        address = self.process.heap.malloc(type_.size, site_id=site)
        build = self._build
        if build is not None and build.static_instr:
            self._charge(ALLOC_TAG_COST_NS)
            tag = self.process.tags.register(
                address, type_, ORIGIN_HEAP, site=self._site_name(thread)
            )
            chunk = self.process.heap.find_chunk(address)
            if chunk is not None:
                self.process.heap.set_header_tag(chunk, tag.tag_id)
        if build is not None and build.dynamic_instr:
            self._charge(ALLOC_DINSTR_COST_NS)
        return address

    def free(self, address: int) -> None:
        self._charge(FREE_COST_NS)
        self.process.tags.unregister(address)
        self.process.heap.free(address)

    def realloc_typed(self, thread: Thread, address: int, new_type: TypeDesc) -> int:
        self._charge(ALLOC_BASE_COST_NS)
        new_address = self.process.heap.realloc(address, new_type.size, site_id=self._site_id(thread))
        build = self._build
        self.process.tags.unregister(address)
        if build is not None and build.static_instr:
            self._charge(ALLOC_TAG_COST_NS)
            self.process.tags.register(
                new_address, new_type, ORIGIN_HEAP, site=self._site_name(thread)
            )
        return new_address

    # -- custom allocators ---------------------------------------------------------

    def region_create(self, block_size: int = 16 * 1024) -> RegionAllocator:
        return RegionAllocator(self.process.heap, block_size)

    def slab_create(self, slab_size: int = 32 * 1024) -> SlabAllocator:
        return SlabAllocator(self.process.heap, slab_size)

    def pool_create(self, name: str = "root", block_size: int = 8 * 1024) -> NestedPool:
        return NestedPool(self.process.heap, name=name, block_size=block_size)

    def region_alloc_typed(self, thread: Thread, region: RegionAllocator, type_: TypeDesc) -> int:
        """Region allocation; tagged only under region instrumentation."""
        self._charge(REGION_ALLOC_COST_NS)
        address = region.alloc(type_.size)
        build = self._build
        if build is not None and build.instrument_regions:
            self._charge(REGION_TAG_COST_NS)
            self.process.tags.register(
                address, type_, ORIGIN_REGION, site=self._site_name(thread)
            )
            if build.dynamic_instr:
                self._charge(ALLOC_DINSTR_COST_NS)
        return address

    def region_destroy(self, region: RegionAllocator) -> None:
        """Destroy a region, dropping any instrumentation tags inside it."""
        for block in region.blocks():
            self.process.tags.unregister_range(block.base, block.end)
        region.destroy()

    def region_alloc_raw(self, region: RegionAllocator, size: int) -> int:
        """Untyped region allocation.

        Under region instrumentation the wrapper still registers an
        (opaque) tag — the instrumented allocator wraps *every* call site,
        typed or not, which is exactly the Table-3 nginx_reg cost.
        """
        self._charge(REGION_ALLOC_COST_NS)
        address = region.alloc(size)
        build = self._build
        if build is not None and build.instrument_regions:
            self._charge(REGION_TAG_COST_NS)
            from repro.types.descriptors import OpaqueType

            self.process.tags.register(
                address, OpaqueType(size), ORIGIN_REGION, site="region_raw"
            )
            if build.dynamic_instr:
                self._charge(ALLOC_DINSTR_COST_NS)
        return address

    # -- field access ------------------------------------------------------------------

    def get(self, address: int, type_: StructType, field: str) -> Any:
        f = type_.field(field)
        return codec.read_value(self.process.space, address + f.offset, f.type)

    def set(self, address: int, type_: StructType, field: str, value: Any) -> None:
        f = type_.field(field)
        codec.write_value(self.process.space, address + f.offset, f.type, value)

    def field_addr(self, address: int, type_: StructType, field: str) -> int:
        return address + type_.field(field).offset

    def read(self, address: int, type_: TypeDesc) -> Any:
        return codec.read_value(self.process.space, address, type_)

    def write(self, address: int, type_: TypeDesc, value: Any) -> None:
        codec.write_value(self.process.space, address, type_, value)

    def read_ptr(self, address: int) -> int:
        return self.process.space.read_word(address)

    def write_ptr(self, address: int, value: int) -> None:
        self.process.space.write_word(address, value)

    # -- globals ------------------------------------------------------------------------

    def global_addr(self, name: str) -> int:
        symbol = self.process.symbols.lookup(name)
        return symbol.address

    def func_addr(self, name: str) -> int:
        """Address of a named function in this version's text segment."""
        symbol = self.process.symbols.lookup(name)
        if symbol.section != "text":
            raise KeyError(f"{name} is not a function symbol")
        return symbol.address

    def gget(self, name: str, field: Optional[str] = None) -> Any:
        symbol = self.process.symbols.lookup(name)
        if field is None:
            return codec.read_value(self.process.space, symbol.address, symbol.type)
        return self.get(symbol.address, symbol.type, field)

    def gset(self, name: str, value: Any, field: Optional[str] = None) -> None:
        symbol = self.process.symbols.lookup(name)
        if field is None:
            codec.write_value(self.process.space, symbol.address, symbol.type, value)
        else:
            self.set(symbol.address, symbol.type, field, value)

    # -- strings -----------------------------------------------------------------------

    def write_cstr(self, address: int, text: str, capacity: Optional[int] = None) -> None:
        data = text.encode() + b"\x00"
        if capacity is not None and len(data) > capacity:
            raise AllocatorError(f"string does not fit: {len(data)} > {capacity}")
        self.process.space.write_bytes(address, data)

    def read_cstr(self, address: int, limit: int = 4096) -> str:
        out = bytearray()
        cursor = address
        while len(out) < limit:
            chunk = self.process.space.read_bytes(cursor, 1)
            if chunk == b"\x00":
                break
            out.extend(chunk)
            cursor += 1
        return out.decode(errors="replace")

    def strdup(self, thread: Thread, text: str) -> int:
        """Heap-allocate a C string.  Char data: opaque even when tagged."""
        data = text.encode() + b"\x00"
        self._charge(ALLOC_BASE_COST_NS)
        address = self.process.heap.malloc(len(data), site_id=self._site_id(thread))
        build = self._build
        if build is not None and build.static_instr:
            self._charge(ALLOC_TAG_COST_NS)
            self.process.tags.register(
                address,
                ArrayType(CHAR, len(data)),
                ORIGIN_HEAP,
                site=self._site_name(thread),
            )
        self.process.space.write_bytes(address, data)
        return address

    # -- stack variables ------------------------------------------------------------------

    def stack_area(self, thread: Thread) -> StackArea:
        area = self._stacks.get(thread.tid)
        if area is None:
            base = self._next_stack_base
            self._next_stack_base += STACK_SPACING
            mapping = self.process.space.map(
                STACK_SIZE, address=base, name=f"stack:{thread.tid}", kind="stack"
            )
            area = StackArea(mapping)
            self._stacks[thread.tid] = area
        return area

    def stack_alloc(self, thread: Thread, name: str, type_: TypeDesc) -> int:
        """Allocate a tracked stack variable for ``thread``.

        Tagged under static instrumentation (but only threads blocked at
        quiescent points have their stacks traced, per the paper).
        """
        area = self.stack_area(thread)
        address = area.alloc(name, type_)
        build = self._build
        if build is not None and build.static_instr:
            self.process.tags.register(
                address, type_, ORIGIN_STACK, site=f"{thread.top_function()}:{name}", name=name
            )
        return address

    def stack_mark(self, thread: Thread) -> Tuple[int, int]:
        return self.stack_area(thread).mark()

    def stack_release(self, thread: Thread, mark: Tuple[int, int]) -> None:
        area = self.stack_area(thread)
        for name, address, _type in area.overlay[mark[1]:]:
            self.process.tags.unregister(address)
        area.release(mark)

    # -- helpers ------------------------------------------------------------------------------

    def _site_id(self, thread: Optional[Thread]) -> int:
        if thread is None:
            return 0
        return call_stack_id(thread.call_stack)

    def _site_name(self, thread: Optional[Thread]) -> str:
        if thread is None:
            return "<unknown>"
        return "/".join(thread.call_stack)
