"""The MCR dynamic runtime (``libmcr.so`` analogue).

One ``MCRSession`` exists per *program instance* (the process tree of one
running version); one ``MCRRuntime`` attaches to each process in the tree.
Every syscall of an MCR-enabled process funnels through
``MCRRuntime.intercept``, which implements:

* **unblockification** (§4) — profiled quiescent-point call sites are
  issued in timeout slices with the quiescence hook run between slices;
  when the barrier protocol is active the thread parks at the barrier
  *before* consuming any new event.
* **startup recording** (§5) — during the old version's startup, every
  syscall is appended to the startup log until all long-lived threads
  reach their quiescent points.
* **replay routing** (§5) — during the new version's controlled startup,
  syscalls are diverted to the ``ReplayEngine``.
* **startup-end bookkeeping** — when startup completes the heap leaves
  startup mode (deferred frees run; separability flagging stops) and the
  soft-dirty bits are cleared (dirty-object tracking begins).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro import obs
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, Thread
from repro.kernel.syscalls import SyscallRequest, TIMEOUT
from repro.mcr.config import MCRConfig
from repro.mcr.quiescence.detection import QuiescenceProtocol, tree_live_threads
from repro.mcr.reinit.startup_log import StartupLog
from repro.mcr.reinit.callstack import sanitize_args, sanitize_result
from repro.runtime.instrument import BuildConfig

# Resident footprint of the preloaded runtime libraries (libmcr.so +
# linked libmcr.a), for the memory-usage benchmark.  Sized after the
# paper's LOC counts at ~14 resident bytes/LOC (code pages actually
# touched at run time).
LIBMCR_FOOTPRINT_BYTES = (21_133 + 3_476 + 4_531) * 14

PHASE_RECORD = "record"    # old version, during startup
PHASE_NORMAL = "normal"    # steady state
PHASE_RESTART = "restart"  # new version, controlled startup (replay)

# fd-creating syscalls subject to startup-time reserved-range allocation.
_SEPARABLE_FD_CREATORS = {
    "socket",
    "open",
    "connect",
    "accept",
    "epoll_create",
    "socketpair",
}


class MCRSession:
    """Session-wide MCR state for one running program version."""

    def __init__(
        self,
        kernel: Kernel,
        program: Any,
        build: BuildConfig,
        config: Optional[MCRConfig] = None,
        role: str = "primary",
    ) -> None:
        self.kernel = kernel
        self.program = program
        self.build = build
        self.config = config or MCRConfig()
        self.role = role  # "primary" (v1) | "restart" (v2)
        self.startup_log = StartupLog()
        self.quiescence = QuiescenceProtocol(self)
        self.phase = PHASE_RESTART if role == "restart" else PHASE_RECORD
        self.startup_complete = False
        self.root_process: Optional[Process] = None
        self.runtimes: List["MCRRuntime"] = []
        # Startup-completion bookkeeping: ``_qp_marked`` counts threads
        # that reached a quiescent point at least once; the full
        # tree-walk check is deferred until it reaches ``_qp_check_floor``
        # (the live-thread total of the last walk), which keeps startup
        # tracking O(threads) instead of O(threads^2) for large trees.
        self._qp_marked = 0
        self._qp_check_floor = 0
        self._qp_repeat_notes = 0
        # Restart-side machinery, installed by the controller.
        self.replay_engine: Any = None
        self.stash: Any = None
        # Timing (update-time evaluation).
        self.startup_started_ns: Optional[int] = None
        self.startup_completed_ns: Optional[int] = None

    @property
    def faults(self):
        """The session's armed ``FaultPlan`` (None = nothing armed)."""
        return getattr(self.config, "faults", None)

    # -- process attachment ------------------------------------------------------

    def attach_process(self, process: Process) -> "MCRRuntime":
        runtime = MCRRuntime(self, process)
        self.runtimes.append(runtime)
        if self.root_process is None:
            self.root_process = process
            self.startup_started_ns = self.kernel.clock.now_ns
        return runtime

    # -- startup-completion tracking ------------------------------------------------

    def note_qp_reached(self, thread: Thread) -> None:
        if self.startup_complete:
            return
        if not thread.reached_qp:
            thread.reached_qp = True
            self._qp_marked += 1
            if self._qp_marked < self._qp_check_floor:
                return
        else:
            # Re-visits can only complete startup when a not-yet-reached
            # thread exited meanwhile; sample them rather than re-walking
            # the whole tree on every loop iteration.
            self._qp_repeat_notes += 1
            if self._qp_repeat_notes & 63:
                return
        root = self.root_process
        if root is None:
            return
        live = tree_live_threads(root)
        if live and all(t.reached_qp for t in live):
            self.finish_startup()
            return
        # Not there yet: no walk can succeed before every currently-live
        # thread has flipped, so defer the next one until then.
        self._qp_check_floor = len(live)

    def finish_startup(self) -> None:
        """Startup over: run deferred frees, start dirty tracking.

        Soft-dirty tracking (and its write-protect faults) belongs to the
        dynamic-instrumentation layer; lighter builds skip it.
        """
        self.startup_complete = True
        self.startup_completed_ns = self.kernel.clock.now_ns
        if self.root_process is not None:
            for process in self.root_process.tree():
                process.heap.end_startup()
                if self.build.dynamic_instr:
                    process.space.clear_soft_dirty()
        if self.phase == PHASE_RECORD:
            self.phase = PHASE_NORMAL
        obs.gauge("mcr.startup_log_records", len(self.startup_log))
        obs.emit(
            "mcr.startup_complete",
            role=self.role,
            duration_ns=self.startup_duration_ns(),
            log_records=len(self.startup_log),
        )

    def startup_duration_ns(self) -> Optional[int]:
        if self.startup_started_ns is None or self.startup_completed_ns is None:
            return None
        return self.startup_completed_ns - self.startup_started_ns

    # -- memory accounting (memory-usage benchmark) -----------------------------------

    def metadata_bytes(self) -> int:
        total = LIBMCR_FOOTPRINT_BYTES
        total += self.startup_log.memory_bytes
        if self.root_process is not None:
            for process in self.root_process.tree():
                total += process.tags.overhead_bytes()
                total += 256  # process-hierarchy metadata node
                total += 128 * len(process.threads)
        return total


class MCRRuntime:
    """Per-process interposition layer."""

    def __init__(self, session: MCRSession, process: Process) -> None:
        self.session = session
        self.process = process

    @property
    def build(self) -> BuildConfig:
        return self.session.build

    def on_fork(self, child: Process) -> "MCRRuntime":
        return self.session.attach_process(child)

    # -- the funnel (generator; driven with yield from by Sys._invoke) ---------------

    def intercept(self, sys_api, name: str, args: Dict[str, Any], timeout_ns: Optional[int]):
        thread: Thread = sys_api.thread
        session = self.session
        program = self.process.program
        is_qp = (
            program is not None
            and (thread.top_function(), name) in program.quiescent_points
        )
        if is_qp and self.build.unblockify:
            result = yield from self._unblockified(sys_api, name, args, timeout_ns)
            return result
        # Global separability: startup-time descriptors are allocated from
        # the reserved (non-reusable) fd range, so a startup fd number can
        # never be recycled into replay ambiguity (paper §5).
        if (
            self.build.dynamic_instr
            and not session.startup_complete
            and session.phase in (PHASE_RECORD, PHASE_RESTART)
            and name in _SEPARABLE_FD_CREATORS
        ):
            args = dict(args, reserved=True)
        if session.phase == PHASE_RESTART and not session.startup_complete:
            engine = session.replay_engine
            if engine is not None:
                result = yield from engine.handle(sys_api, name, args, timeout_ns)
                # The new version records its *own* startup log while
                # replaying, so it can itself be live-updated later (the
                # paper measures both the record and the replay phase in
                # the new version).
                if self.build.dynamic_instr:
                    session.startup_log.record(
                        self.process.pid,
                        list(thread.call_stack),
                        thread.stack_id(),
                        name,
                        sanitize_args(args),
                        sanitize_result(result),
                    )
                    obs.incr("mcr.replayed_ops_recorded")
                return result
        result = yield SyscallRequest(name, args, timeout_ns)
        if (
            session.phase == PHASE_RECORD
            and not session.startup_complete
            and self.build.dynamic_instr
        ):
            session.startup_log.record(
                self.process.pid,
                list(thread.call_stack),
                thread.stack_id(),
                name,
                sanitize_args(args),
                sanitize_result(result),
            )
            obs.incr("mcr.recorded_ops")
        return result

    # -- unblockification (§4) ----------------------------------------------------------

    def _unblockified(self, sys_api, name: str, args: Dict[str, Any], caller_timeout_ns: Optional[int]):
        """Issue a blocking call in slices, running the quiescence hook.

        Exposes the original call semantics to the program (including a
        caller-supplied timeout) while guaranteeing the thread re-enters
        user space every ``unblockify_slice_ns`` to check for a pending
        quiescence request.
        """
        thread: Thread = sys_api.thread
        session = self.session
        config = session.config
        session.kernel.clock.advance(config.unblockify_entry_cost_ns)
        if not thread.reached_qp:
            session.note_qp_reached(thread)
        waited_ns = 0
        while True:
            # The quiescence hook: divert to the barrier before arming the
            # call again, so no new event is ever consumed mid-protocol.
            if self.build.qdet and session.quiescence.hook_should_block(
                thread.process
            ):
                yield SyscallRequest(
                    "barrier_wait", {"barrier": session.quiescence.barrier}
                )
                # Barrier released: re-check (rollback resumes us here).
                continue
            slice_ns = config.unblockify_slice_ns
            if caller_timeout_ns is not None:
                slice_ns = min(slice_ns, caller_timeout_ns - waited_ns)
                if slice_ns <= 0:
                    return TIMEOUT
            result = yield SyscallRequest(name, args, slice_ns)
            if result is not TIMEOUT:
                return result
            waited_ns += slice_ns
            # The re-arm is the run-time cost of unblockification.
            session.kernel.clock.advance(config.unblockify_poll_cost_ns)
            collector = obs.ACTIVE
            if collector is not None:
                collector.counters.incr("mcr.unblockify_rearms")
