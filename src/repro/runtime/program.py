"""Program definitions and the loader ("ld.gold" of the reproduction).

A ``Program`` is what a server package exports per version: global variable
declarations, a type registry, the entry point, shared libraries, MCR
annotations, and — after quiescence profiling — the set of quiescent
points.  ``load_program`` turns one into a running process: it lays out the
data segment, builds the symbol table, applies the static instrumentation
pass per the build configuration, attaches the MCR runtime, and hands the
entry point to the kernel.

Linker-script support for MCR's immutable static objects: ``pinned_symbols``
forces named globals to their old-version addresses in the new version
(paper §5 — "immutable static memory objects ... are inherited using a
linker script"), and ``lib_bases`` remaps shared libraries to their old
addresses (the prelink step).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.mem.address_space import DATA_BASE
from repro.runtime.cruntime import CRuntime, SharedLib
from repro.runtime.instrument import BuildConfig, apply_static_instrumentation
from repro.types import codec
from repro.types.descriptors import TypeDesc
from repro.types.symbols import Symbol, SymbolTable

DATA_SEGMENT_SIZE = 256 * 1024
TEXT_BASE = 0x0000_0040_0000
FUNCTION_STRIDE = 64  # bytes of "code" per simulated function


class GlobalVar:
    """One global variable declaration."""

    __slots__ = ("name", "type", "init")

    def __init__(self, name: str, type_: TypeDesc, init: Any = None) -> None:
        self.name = name
        self.type = type_
        self.init = init


class Program:
    """A loadable server program version."""

    def __init__(
        self,
        name: str,
        version: str,
        globals_: List[GlobalVar],
        main: Callable,
        types: Optional[Dict[str, TypeDesc]] = None,
        libs: Optional[List[Tuple[str, int]]] = None,
        annotations: Optional[Any] = None,
        quiescent_points: Optional[set] = None,
        pinned_symbols: Optional[Dict[str, int]] = None,
        lib_bases: Optional[Dict[str, int]] = None,
        metadata: Optional[Dict[str, Any]] = None,
        functions: Optional[List[str]] = None,
    ) -> None:
        self.name = name
        self.version = version
        self.globals_ = list(globals_)
        self.main = main
        self.types = dict(types or {})
        self.libs = list(libs or [])
        # Named functions: laid out in a text segment so programs can take
        # their addresses; code pointers are remapped *by symbol name*
        # across versions (paper §6: relocation tags for functions too).
        self.functions = list(functions or [])
        # Annotations default to an empty set; imported lazily to avoid a
        # package cycle (mcr depends on runtime).
        if annotations is None:
            from repro.mcr.annotations import Annotations

            annotations = Annotations()
        self.annotations = annotations
        # (function_name, syscall_name) pairs, produced by the profiler.
        self.quiescent_points = set(quiescent_points or ())
        self.pinned_symbols = dict(pinned_symbols or {})
        self.lib_bases = dict(lib_bases or {})
        self.metadata = dict(metadata or {})

    def type_changes(self, older: "Program") -> Dict[str, List[str]]:
        """Structural diff of the type registries (Table 1 'Type' input)."""
        added = [n for n in self.types if n not in older.types]
        removed = [n for n in older.types if n not in self.types]
        changed = [
            n
            for n in self.types
            if n in older.types
            and self.types[n].signature() != older.types[n].signature()
        ]
        return {"added": added, "removed": removed, "changed": changed}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name} v{self.version}>"


def _layout_text_segment(process: Process, program: Program, symbols: SymbolTable) -> None:
    """Assign an address to every named function (the text segment).

    Layout is declaration-order dependent, so two versions generally place
    the same-named function at *different* addresses — which is exactly why
    code pointers must be remapped by symbol, never copied.  The version
    string perturbs the base so the difference is guaranteed in tests.
    """
    if not program.functions:
        return
    from repro.types.descriptors import FuncType

    size = (len(program.functions) + 1) * FUNCTION_STRIDE
    offset = (sum(ord(c) for c in program.version) % 4) * FUNCTION_STRIDE
    mapping = process.space.map(
        size + offset + 4096, address=TEXT_BASE, name="text", kind="data"
    )
    cursor = mapping.base + offset
    for name in program.functions:
        symbols.add(Symbol(name, FuncType(name), cursor, section="text"))
        cursor += FUNCTION_STRIDE


def _layout_data_segment(process: Process, program: Program) -> SymbolTable:
    """Place globals in the data segment; honor linker-script pins."""
    mapping = process.space.map(
        DATA_SEGMENT_SIZE, address=DATA_BASE, name="data", kind="data"
    )
    symbols = SymbolTable()
    _layout_text_segment(process, program, symbols)
    pinned_ranges: List[Tuple[int, int]] = []
    for var in program.globals_:
        pin = program.pinned_symbols.get(var.name)
        if pin is not None:
            if not (mapping.base <= pin and pin + var.type.size <= mapping.end):
                raise SimError(
                    f"pinned symbol {var.name} at 0x{pin:x} outside data segment"
                )
            symbols.add(Symbol(var.name, var.type, pin))
            pinned_ranges.append((pin, pin + var.type.size))
    pinned_ranges.sort()
    cursor = mapping.base
    for var in program.globals_:
        if var.name in symbols:
            continue
        aligned = (cursor + var.type.align - 1) // var.type.align * var.type.align
        # Skip over any pinned range we would collide with.
        placed = False
        while not placed:
            placed = True
            for start, end in pinned_ranges:
                if aligned < end and start < aligned + var.type.size:
                    aligned = (end + var.type.align - 1) // var.type.align * var.type.align
                    placed = False
        if aligned + var.type.size > mapping.end:
            raise SimError(f"data segment overflow placing {var.name}")
        symbols.add(Symbol(var.name, var.type, aligned))
        cursor = aligned + var.type.size
    # Write initial values.
    for var in program.globals_:
        if var.init is not None:
            symbol = symbols.lookup(var.name)
            codec.write_value(process.space, symbol.address, symbol.type, var.init)
    return symbols


def load_program(
    kernel: Kernel,
    program: Program,
    build: Optional[BuildConfig] = None,
    session: Optional[Any] = None,
    main_args: Tuple = (),
    name: Optional[str] = None,
    namespace: Optional[Any] = None,
    main_override: Optional[Callable] = None,
) -> Process:
    """Load and start ``program`` in a fresh process.

    ``session`` is an ``MCRSession`` (attached when the build enables any
    MCR layer); the process does not run until ``kernel.run`` is called.
    ``namespace``/``main_override`` support MCR restart: the new version
    runs in its own PID namespace behind an inheritance bootstrap.
    """
    build = build or BuildConfig.baseline()
    process = kernel.spawn_process(
        main_override or program.main,
        args=main_args,
        name=name or program.name,
        namespace=namespace,
    )
    process.program = program
    process.build = build
    process.symbols = _layout_data_segment(process, program)
    process.crt = CRuntime(process)
    process.libs = {}
    for lib_name, lib_size in program.libs:
        base = program.lib_bases.get(lib_name)
        process.libs[lib_name] = SharedLib(process, lib_name, lib_size, base=base)
    if build.static_instr:
        apply_static_instrumentation(process, program)
    if not (build.mcr_enabled and build.dynamic_instr):
        # Startup-time separability (deferred frees, startup flagging) is
        # dynamic-instrumentation behaviour; other builds run the heap in
        # normal mode from the start.
        process.heap.end_startup()
    if build.mcr_enabled:
        if session is None:
            from repro.runtime.libmcr import MCRSession

            session = MCRSession(kernel, program, build)
        process.runtime = session.attach_process(process)
        process.mcr_session = session
    return process
