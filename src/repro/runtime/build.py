"""The build-time workflow of Figure 1: profile → instrument → run.

The paper's flow: the quiescence profiler suggests per-thread quiescent
points; the user feeds them to the static instrumentation, which wraps the
corresponding blocking call sites.  ``profile_program`` runs the profiler
in a throwaway world; ``apply_profile`` installs its findings into a
``Program`` (replacing any hand-declared quiescent points); and
``build_from_profile`` does the whole loop — the programmatic equivalent
of "integrating quiescence profiling as part of their regression test
suite" (§3).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.kernel.kernel import Kernel
from repro.mcr.quiescence.profiler import QuiescenceProfiler
from repro.mcr.quiescence.report import QuiescenceReport
from repro.runtime.program import Program


def profile_program(
    make_program: Callable[[], Program],
    setup_world: Callable[[Kernel], None],
    workload,
) -> QuiescenceReport:
    """Run the quiescence profiler on a fresh instance of the program."""
    kernel = Kernel()
    setup_world(kernel)
    return QuiescenceProfiler(kernel).profile(make_program(), workload)


def apply_profile(program: Program, report: QuiescenceReport) -> Program:
    """Install profiled quiescent points into a program (the ANNOTATE→
    build arrow of Figure 1).  Returns the program for chaining."""
    program.quiescent_points = set(report.quiescent_points())
    program.metadata["quiescence_profile"] = report.summary()
    return program


def build_from_profile(
    make_program: Callable[[], Program],
    setup_world: Callable[[Kernel], None],
    workload,
) -> Program:
    """Profile a program and return an instance instrumented with the
    profiler's quiescent points instead of hand-declared ones."""
    report = profile_program(make_program, setup_world, workload)
    return apply_profile(make_program(), report)
