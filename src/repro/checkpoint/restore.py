"""Image restore: boot-and-graft rehydration into a fresh ``Node``.

Simulated threads are Python generators and cannot be serialized, so the
restorer does what CRIU cannot: it *boots* a fresh instance of the same
server version — which deterministically reproduces the source tree's
shape (pids, thread identities, fd numbers, sock ids, mapping layout are
all allocated during startup, before any traffic) — quiesces it at the
same barrier, and then *grafts* the image's mutable state over it:
mapping bytes, allocator bookkeeping, fd-table flags and allocation
cursors, listener/network counters.  The program's own state lives
entirely in simulated memory, so byte-identical memory plus identical
kernel-object state is a byte-identical server (``TreeFingerprint``
pins this in the round-trip tests).

Validation runs **in full before any mutation**: every structural
surface of the freshly booted tree is checked against the image and a
mismatch raises ``ImageError`` naming the failing surface — a bad or
incompatible image can never produce a partially restored tree.

The returned node is still parked at the quiescence barrier, which is
what makes it a *warm standby*: deltas can be grafted indefinitely, and
``resume_node`` (promotion) releases the barrier to start serving.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro import obs
from repro.errors import ImageError
from repro.fleet.node import DEFAULT_STALL_NS, Node
from repro.mcr.config import MCRConfig
from repro.mem.ptmalloc import Chunk, _FreeList
from repro.checkpoint.image import CheckpointImage
from repro.mcr.faults import fire


# -- validation (read-only; every check precedes the first graft write) --------


def _validate_tree(node: Node, image: CheckpointImage) -> Dict[int, Any]:
    """Check the booted tree matches the image structurally; map pid->process."""
    records = {record["pid"]: record for record in image.meta["processes"]}
    live: Dict[int, Any] = {p.pid: p for p in node.root.tree()}
    want = {
        (r["pid"], r["name"], r["parent_pid"]) for r in records.values()
    }
    have = {
        (p.pid, p.name, p.parent.pid if p.parent is not None else None)
        for p in live.values()
    }
    if want != have:
        raise ImageError(
            "process-tree",
            f"booted tree {sorted(have)} != image tree {sorted(want)}",
        )
    for pid, record in records.items():
        process = live[pid]
        _validate_threads(process, record)
        _validate_mappings(process, record, image)
        _validate_heap(process, record)
        _validate_fds(process, record)
    _validate_listeners(node, image)
    return live


def _validate_threads(process: Any, record: Dict[str, Any]) -> None:
    live = {t.tid: t for t in process.live_threads()}
    want = {(t["tid"], t["name"]) for t in record["threads"]}
    have = {(t.tid, t.name) for t in live.values()}
    if want != have:
        raise ImageError(
            "threads",
            f"pid {process.pid}: booted threads {sorted(have)} != image {sorted(want)}",
        )
    for entry in record["threads"]:
        thread = live[entry["tid"]]
        if not thread.at_barrier:
            raise ImageError(
                "threads",
                f"pid {process.pid} tid {thread.tid} not parked at the barrier",
            )
        if entry["at_barrier"] and entry["call_stack"] != thread.call_stack:
            raise ImageError(
                "threads",
                f"pid {process.pid} tid {thread.tid}: quiescent point moved "
                f"({thread.call_stack} != image {entry['call_stack']})",
            )


def _validate_mappings(process: Any, record: Dict[str, Any], image: CheckpointImage) -> None:
    want = {
        (m["name"], m["base"], m["size"], m["kind"]) for m in record["mappings"]
    }
    have = {
        (m.name, m.base, m.size, m.kind) for m in process.space.mappings()
    }
    if want != have:
        raise ImageError(
            "mappings",
            f"pid {process.pid}: booted layout {sorted(have)} != image {sorted(want)}",
        )
    for entry in record["mappings"]:
        section = image.sections.get(entry["section"])
        if section is None:
            raise ImageError(entry["section"], "section payload missing")
        if len(section) != entry["size"]:
            raise ImageError(
                entry["section"],
                f"payload {len(section)} bytes, mapping is {entry['size']}",
            )


def _validate_heap(process: Any, record: Dict[str, Any]) -> None:
    heap = process.heap
    rec = record["heap"]
    if rec["base"] != heap.base:
        raise ImageError(
            "allocator", f"pid {process.pid}: heap base moved"
        )
    lo, hi = heap.base, heap.end
    for start, end in rec["free"]:
        if not (lo <= start < end <= hi):
            raise ImageError(
                "allocator",
                f"pid {process.pid}: free interval [{start:#x},{end:#x}) outside heap",
            )
    for base, _user, total, _startup, _site in rec["chunks"]:
        if not (lo <= base and base + total <= hi):
            raise ImageError(
                "allocator",
                f"pid {process.pid}: chunk at {base:#x} outside heap",
            )


def _validate_fds(process: Any, record: Dict[str, Any]) -> None:
    want = {(fd, kind) for fd, kind, _closed, _ref in record["fds"]}
    have = {
        (fd, getattr(obj, "kind", "?")) for fd, obj in process.fdtable.items()
    }
    if want != have:
        raise ImageError(
            "fds",
            f"pid {process.pid}: booted fds {sorted(have)} != image {sorted(want)}",
        )


def _validate_listeners(node: Node, image: CheckpointImage) -> None:
    want = {(port, sock_id) for port, sock_id, _c, _b in image.meta["listeners"]}
    have = {
        (port, listener.sock_id)
        for port, listener in node.kernel.net._listeners.items()
    }
    if want != have:
        raise ImageError(
            "listeners",
            f"booted listeners {sorted(have)} != image {sorted(want)}",
        )


def _respawn_volatile_threads(node: Node, image: CheckpointImage) -> bool:
    """Recreate lazily-spawned threads the image has but a fresh boot lacks.

    Mirrors the live-update path's ``post_startup`` handlers: volatile
    threads (httpd's janitor) are spawned on demand, not during startup,
    so a fresh boot cannot reproduce them.  The program declares their
    mains in ``metadata["volatile_thread_mains"]`` and the restorer
    respawns each missing one in image order — per-process tids are
    allocated sequentially, so image order reproduces the image's tids.
    Anything still missing afterwards is a genuine incompatibility and
    is left for validation to name.
    """
    mains = node.program.metadata.get("volatile_thread_mains") or {}
    if not mains:
        return False
    records = {r["pid"]: r for r in image.meta["processes"]}
    spawned = False
    for process in node.root.tree():
        record = records.get(process.pid)
        if record is None:
            continue
        have = {t.name for t in process.live_threads()}
        for entry in record["threads"]:
            main = mains.get(entry["name"])
            if entry["name"] in have or main is None:
                continue
            node.kernel._start_thread(process, main, (), entry["name"])
            spawned = True
    return spawned


# -- graft (only runs once validation passed in full) --------------------------


def _graft_heap(heap: Any, rec: Dict[str, Any]) -> None:
    free = _FreeList()
    for start, end in rec["free"]:
        free.add(start, end)
    heap._free = free
    heap._chunks = {}
    for base, user_size, total_size, startup, site_id in rec["chunks"]:
        chunk = Chunk(base, user_size, total_size)
        chunk.startup = bool(startup)
        chunk.site_id = site_id
        heap._chunks[chunk.user_base] = chunk
    heap._sorted_user_bases = sorted(heap._chunks)
    heap._reserved = {base: size for base, size in rec["reserved"]}
    heap.startup_mode = bool(rec["startup_mode"])
    heap._deferred_frees = list(rec["deferred"])
    heap._deferred = set(rec["deferred"])
    heap.malloc_count = rec["malloc_count"]
    heap.free_count = rec["free_count"]
    heap.bytes_allocated = rec["bytes_allocated"]


def graft_process(process: Any, record: Dict[str, Any], image: CheckpointImage) -> None:
    """Overlay one process's mutable state from the image (post-validation)."""
    for entry in record["mappings"]:
        mapping = process.space.mapping_at(entry["base"])
        mapping.data[:] = image.sections[entry["section"]]
        # Chunk headers and tag mirrors ride along in the mapping bytes.
    _graft_heap(process.heap, record["heap"])
    fdtable = process.fdtable
    for fd, _kind, closed, _refcount in record["fds"]:
        obj = fdtable.try_get(fd)
        if obj is not None and hasattr(obj, "closed"):
            obj.closed = bool(closed)
    alloc = record["fd_alloc"]
    fdtable._next_reserved = alloc["next_reserved"]
    fdtable._next_stash = alloc["next_stash"]
    fdtable._blocked_numbers = set(alloc["blocked"])


def _graft_world(node: Node, image: CheckpointImage) -> None:
    net = node.kernel.net
    counters = image.meta["net"]
    net._next_sock_id = counters["next_sock_id"]
    net._next_conn_id = counters["next_conn_id"]
    net._next_pair_id = counters["next_pair_id"]
    net._next_epoll_id = counters["next_epoll_id"]
    net.total_connections = counters["total_connections"]
    for port, _sock_id, closed, backlog in image.meta["listeners"]:
        listener = net._listeners.get(port)
        if listener is not None:
            listener.backlog = backlog
            listener.closed = bool(closed)
    node.kernel.pidns._next_pid = image.meta["namespace"]["next_pid"]


# -- entry points --------------------------------------------------------------


def restore_image(
    image: CheckpointImage,
    node_id: int = 0,
    config: Optional[MCRConfig] = None,
    stall_ns: int = DEFAULT_STALL_NS,
) -> Node:
    """Rehydrate ``image`` into a fresh, fully validated, *quiesced* node.

    Boot-and-graft: boots ``image.server`` at the image's program
    version in a brand-new kernel, drives it to the quiescence barrier,
    validates every structural surface against the image (raising
    ``ImageError`` before any mutation on mismatch), then grafts the
    mutable state.  The returned node is held at the barrier — apply
    deltas to keep it warm, or ``resume_node`` to start serving.
    """
    node = Node.boot(
        image.server,
        node_id=node_id,
        version=image.meta["program_version"],
        config=config,
        stall_ns=stall_ns,
    )
    with node.scope():
        with obs.span("restore", image_id=image.image_id):
            protocol = node.session.quiescence
            protocol.request()
            try:
                protocol.wait(node.root, config=config)
                if _respawn_volatile_threads(node, image):
                    # Drive the recreated threads to the barrier too.
                    protocol.wait(node.root, config=config)
                fire(config, "restore.image")
                live = _validate_tree(node, image)
                for record in image.meta["processes"]:
                    graft_process(live[record["pid"]], record, image)
                _graft_world(node, image)
            except BaseException as error:
                _dump_restore_blackbox(node, image, error, config)
                protocol.release()
                node.teardown()
                raise
    obs.incr("checkpoint.restores")
    obs.emit("checkpoint.restored", image_id=image.image_id)
    return node


def _dump_restore_blackbox(
    node: Node,
    image: CheckpointImage,
    error: BaseException,
    config: Optional[MCRConfig],
) -> None:
    """Post-mortem for a failed restore, stamped with the image identity.

    Best-effort by construction: the dump must never mask the
    ``ImageError`` that is about to propagate.
    """
    try:
        blackbox = node.collector.recorder.dump(
            "restore.failed",
            failure_site=getattr(error, "fault_site", None) or "restore.image",
            fingerprint=image.fingerprint.summary(),
            image_version=image.image_id,
            image_format=image.meta.get("format"),
            last_applied_delta_seq=0,
            error=repr(error),
        )
        path = getattr(config, "blackbox_path", None)
        if path:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(blackbox, handle, indent=2, sort_keys=True)
    except Exception:  # pragma: no cover - never make the failure worse
        pass


def resume_node(node: Node) -> Node:
    """Release the restore-time barrier: the grafted tree starts serving."""
    with node.scope():
        node.session.quiescence.release()
    return node
