"""Incremental checkpoints: dirty pages + changed records since a baseline.

A full image records each mapping's monotonic ``write_seq`` (the same
sequencing the incremental-scan cache layers on, deliberately disjoint
from the update-time soft-dirty bits).  A delta then ships exactly the
pages ``PageTracker.pages_written_since`` reports, plus the
fd/allocator/listener records whose serialized form changed, plus —
always — the source tree's ``TreeFingerprint``, so the standby can
verify every applied delta end to end.

Deltas are chained: ``seq`` numbers count up from the base image and a
standby must apply them gaplessly (CheckSync semantics — a dropped or
reordered delta makes the standby *stale*, and only the next full image
resyncs it).  If the mapping set itself changed since the baseline
(fork/exit/mmap), ``capture_delta`` returns ``None`` — the caller cuts
a fresh full image instead of describing structural change in a delta.

Wire format mirrors the image: ``b"MCRDELTA"`` + u32 version + u32 meta
length + meta JSON + meta CRC + page payload blob (offsets in meta,
whole blob CRC'd).  ``DeltaCheckpoint.decode`` raises ``ImageError``
(section ``"delta"``) on any damage.
"""

from __future__ import annotations

import json
import struct
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.errors import ImageError
from repro.mcr.config import MCRConfig
from repro.mcr.faults import TreeFingerprint, fire
from repro.mem.pages import PAGE_SIZE
from repro.checkpoint.image import CheckpointImage, _process_record

DELTA_MAGIC = b"MCRDELTA"
DELTA_VERSION = 1
_HEADER = struct.Struct("<8sII")

# Virtual-time cost of serializing one delta byte (same order as the
# full-image cost; deltas are small so the pause is microseconds).
DELTA_BYTE_NS = 1


def _record_crc(record: Dict[str, Any]) -> int:
    return zlib.crc32(json.dumps(record, sort_keys=True).encode())


class DeltaBaseline:
    """What the last checkpoint (full or delta) saw: seqs + record CRCs."""

    def __init__(self, image: CheckpointImage) -> None:
        self.image_id = image.image_id
        self.seq = 0
        # (pid, mapping base) -> write_seq at last checkpoint.
        self.mapping_seqs: Dict[Tuple[int, int], int] = {}
        # pid -> CRC of the last-shipped per-process record.
        self.record_crcs: Dict[int, int] = {}
        self.listeners_crc = _record_crc({"listeners": image.meta["listeners"]})
        for record in image.meta["processes"]:
            self.record_crcs[record["pid"]] = _record_crc(
                {k: record[k] for k in ("heap", "fds", "fd_alloc")}
            )
            for entry in record["mappings"]:
                self.mapping_seqs[(record["pid"], entry["base"])] = entry["write_seq"]


class DeltaCheckpoint:
    """One incremental checkpoint, streamable to a warm standby."""

    def __init__(self, meta: Dict[str, Any], pages_blob: bytes) -> None:
        self.meta = meta
        self.pages_blob = pages_blob

    @property
    def seq(self) -> int:
        return self.meta["seq"]

    @property
    def base_image_id(self) -> str:
        return self.meta["base_image_id"]

    @property
    def fingerprint(self) -> TreeFingerprint:
        return TreeFingerprint.from_dict(self.meta["fingerprint"])

    def total_bytes(self) -> int:
        return len(self.pages_blob)

    def encode(self) -> bytes:
        meta_blob = json.dumps(self.meta, sort_keys=True).encode()
        return b"".join(
            [
                _HEADER.pack(DELTA_MAGIC, DELTA_VERSION, len(meta_blob)),
                meta_blob,
                struct.pack("<I", zlib.crc32(meta_blob)),
                self.pages_blob,
            ]
        )

    @classmethod
    def decode(cls, data: bytes) -> "DeltaCheckpoint":
        if len(data) < _HEADER.size:
            raise ImageError("delta", "truncated delta header")
        magic, version, meta_len = _HEADER.unpack_from(data)
        if magic != DELTA_MAGIC:
            raise ImageError("delta", f"bad magic {magic!r}")
        if version != DELTA_VERSION:
            raise ImageError("delta", f"unknown delta format {version}")
        meta_end = _HEADER.size + meta_len
        if len(data) < meta_end + 4:
            raise ImageError("delta", "truncated before end of meta")
        meta_blob = data[_HEADER.size:meta_end]
        (crc,) = struct.unpack_from("<I", data, meta_end)
        if zlib.crc32(meta_blob) != crc:
            raise ImageError("delta", "meta CRC mismatch")
        meta = json.loads(meta_blob)
        blob = data[meta_end + 4:]
        if len(blob) != meta["pages_length"] or zlib.crc32(blob) != meta["pages_crc32"]:
            raise ImageError("delta", "page payload truncated or corrupt")
        return cls(meta, blob)


@contextmanager
def hold_quiesced(node: Any, config: Optional[MCRConfig] = None) -> Iterator[None]:
    """Park ``node``'s tree at the quiescence barrier for the block's duration.

    The primitive a planned migration's stop-and-copy is built from: the
    caller quiesces once, then cuts the final delta, streams it, and
    promotes the target *while the source tree is still parked*, so no
    write can race the copy.  The barrier is always released on exit —
    an abort mid-block resumes the source serving exactly where it
    stopped (a failed migration never takes the primary down).
    """
    config = config or node.session.config
    with node.scope():
        protocol = node.session.quiescence
        protocol.request()
        try:
            protocol.wait(node.root, config=config)
            yield
        finally:
            protocol.release()


def capture_delta(
    node: Any,
    baseline: DeltaBaseline,
    config: Optional[MCRConfig] = None,
) -> Optional[DeltaCheckpoint]:
    """Quiesce ``node`` and cut the next delta against ``baseline``.

    Returns ``None`` when the tree's shape changed (new/gone process or
    mapping) — the caller must cut a full image to resync.  Advances the
    baseline on success, so consecutive calls chain gaplessly.
    """
    config = config or node.session.config
    with hold_quiesced(node, config):
        return capture_delta_locked(node, baseline, config)


def capture_delta_locked(
    node: Any,
    baseline: DeltaBaseline,
    config: Optional[MCRConfig] = None,
) -> Optional[DeltaCheckpoint]:
    """Cut the next delta while the caller already holds the barrier.

    ``capture_delta`` wraps this in its own ``hold_quiesced``; callers
    that keep the tree parked across the capture *and* what follows
    (stop-and-copy: capture, stream, apply, promote) call this directly
    inside their own ``hold_quiesced`` block.
    """
    config = config or node.session.config
    with node.scope():
        with obs.span("checkpoint.delta"):
            return _capture_delta_quiesced(node, baseline, config)


def _capture_delta_quiesced(
    node: Any,
    baseline: DeltaBaseline,
    config: Optional[MCRConfig],
) -> Optional[DeltaCheckpoint]:
    fire(config, "checkpoint.delta")
    kernel = node.kernel
    live_keys = set()
    pages: List[Dict[str, Any]] = []
    blob_parts: List[bytes] = []
    offset = 0
    records: Dict[str, Any] = {}
    for process in node.root.tree():
        record = _process_record(process)
        for entry in record["mappings"]:
            live_keys.add((process.pid, entry["base"]))
        if any(
            (process.pid, entry["base"]) not in baseline.mapping_seqs
            for entry in record["mappings"]
        ):
            return None  # structural change: resync with a full image
        for mapping in sorted(process.space.mappings(), key=lambda m: m.base):
            seen = baseline.mapping_seqs[(process.pid, mapping.base)]
            for page_base in mapping.tracker.pages_written_since(seen):
                length = min(PAGE_SIZE, mapping.base + mapping.size - page_base)
                blob = bytes(process.space.view(page_base, length))
                pages.append(
                    {
                        "pid": process.pid,
                        "mapping_base": mapping.base,
                        "address": page_base,
                        "offset": offset,
                        "length": length,
                    }
                )
                blob_parts.append(blob)
                offset += length
        crc = _record_crc({k: record[k] for k in ("heap", "fds", "fd_alloc")})
        if crc != baseline.record_crcs.get(process.pid):
            records[str(process.pid)] = {
                "heap": record["heap"],
                "fds": record["fds"],
                "fd_alloc": record["fd_alloc"],
            }
    if live_keys != set(baseline.mapping_seqs):
        return None  # a mapping (or whole process) disappeared
    net = kernel.net
    listeners = [
        [port, listener.sock_id, bool(listener.closed), listener.backlog]
        for port, listener in sorted(net._listeners.items())
    ]
    listeners_crc = _record_crc({"listeners": listeners})
    pages_blob = b"".join(blob_parts)
    meta: Dict[str, Any] = {
        "seq": baseline.seq + 1,
        "base_image_id": baseline.image_id,
        "captured_ns": kernel.clock.now_ns,
        "pages": pages,
        "pages_length": len(pages_blob),
        "pages_crc32": zlib.crc32(pages_blob),
        "records": records,
        "listeners": listeners if listeners_crc != baseline.listeners_crc else None,
        "fingerprint": TreeFingerprint.capture(kernel, node.root).to_dict(),
    }
    delta = DeltaCheckpoint(meta, pages_blob)
    # Advance the baseline only once the delta exists: a fault raised
    # above leaves the baseline untouched, so the retried delta covers
    # the same pages again (at-least-once, idempotent page grafts).
    baseline.seq = meta["seq"]
    baseline.listeners_crc = listeners_crc
    for process in node.root.tree():
        record = _process_record(process)
        baseline.record_crcs[process.pid] = _record_crc(
            {k: record[k] for k in ("heap", "fds", "fd_alloc")}
        )
        for entry in record["mappings"]:
            baseline.mapping_seqs[(process.pid, entry["base"])] = entry["write_seq"]
    pause_ns = len(pages_blob) * DELTA_BYTE_NS
    kernel.clock.advance(pause_ns)
    obs.incr("checkpoint.deltas")
    obs.incr("checkpoint.delta_bytes", len(pages_blob))
    obs.emit(
        "checkpoint.delta_cut",
        seq=delta.seq,
        pages=len(pages),
        bytes=len(pages_blob),
    )
    return delta
