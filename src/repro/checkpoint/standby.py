"""Warm standby: a restored, barrier-parked twin fed by the delta stream.

``WarmStandby`` wraps a node produced by ``restore_image`` and keeps it
continuously up to date: each ``DeltaCheckpoint`` arriving over the
(simulated) ``StandbyChannel`` is decoded, sequence-checked, and grafted
into the still-quiesced tree.  Failover is ``promote()``: verify the
standby's live ``TreeFingerprint`` against the last applied checkpoint's
expected fingerprint, release the barrier, start serving.

Staleness semantics (CheckSync-style bounded divergence): a corrupt,
dropped, or out-of-order delta marks the standby *stale* — it keeps its
last consistent state and ignores further deltas until ``apply_full``
resyncs it from the next full image.  A stale standby can still be
promoted (it serves the last consistent checkpoint; the failover driver
reports how many sequences of work that loses), but a standby whose
fingerprint does not match its expectation can never be — that is a
``PromotionError`` plus a black-box dump stamped with the image id and
last-applied delta sequence.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro import obs
from repro.errors import PromotionError
from repro.fleet.node import Node
from repro.mcr.config import MCRConfig
from repro.mcr.faults import TreeFingerprint, fire
from repro.checkpoint.delta import DeltaCheckpoint
from repro.checkpoint.image import CheckpointImage
from repro.checkpoint.restore import _graft_heap, restore_image, resume_node

# Virtual-time costs of the replication channel (ns).
STREAM_BYTE_NS = 2        # serialize + ship one byte primary -> standby
APPLY_BYTE_NS = 1         # graft one received byte into the standby
PROMOTE_BASE_NS = 3_000_000  # barrier release + VIP flip on promotion


class StandbyChannel:
    """The simulated replication link: an ordered queue of encoded deltas.

    ``send`` fires the ``stream.send`` fault site — an injected death
    drops the delta on the floor (the bytes never reach the standby),
    which is exactly the gap ``WarmStandby.apply`` then detects.
    """

    def __init__(self) -> None:
        self.queue: List[bytes] = []
        self.sent = 0
        self.dropped = 0
        self.bytes_sent = 0

    def send(self, delta: DeltaCheckpoint, config: Optional[MCRConfig] = None) -> int:
        blob = delta.encode()
        try:
            fire(config, "stream.send")
        except BaseException:
            self.dropped += 1
            raise
        self.queue.append(blob)
        self.sent += 1
        self.bytes_sent += len(blob)
        obs.incr("checkpoint.stream_bytes", len(blob))
        return len(blob) * STREAM_BYTE_NS

    def drain(self) -> List[bytes]:
        blobs, self.queue = self.queue, []
        return blobs


class WarmStandby:
    """A quiesced twin of the primary, promotable on failure."""

    def __init__(
        self,
        node: Node,
        image: CheckpointImage,
        config: Optional[MCRConfig] = None,
    ) -> None:
        self.node = node
        self.config = config
        self.image_id = image.image_id
        self.applied_seq = 0
        self.stale = False
        self.promoted = False
        self.deltas_applied = 0
        self.deltas_rejected = 0
        # What the standby's tree must fingerprint as right now.
        self.expected_fingerprint = image.fingerprint
        self.last_blackbox: Optional[Dict[str, Any]] = None

    @classmethod
    def from_image(
        cls,
        image: CheckpointImage,
        node_id: int = 1,
        config: Optional[MCRConfig] = None,
    ) -> "WarmStandby":
        node = restore_image(image, node_id=node_id, config=config)
        return cls(node, image, config=config)

    # -- the continuously-applied stream --------------------------------------

    def apply(self, blob: bytes) -> bool:
        """Graft one encoded delta; returns True when applied cleanly.

        Any damage or discontinuity marks the standby stale instead of
        raising: the replication path must never take the standby down,
        only bound how fresh it is.
        """
        if self.stale:
            self.deltas_rejected += 1
            return False
        try:
            fire(self.config, "stream.apply")
            delta = DeltaCheckpoint.decode(blob)
        except Exception as error:  # ImageError, injected faults, ...
            self.deltas_rejected += 1
            self.stale = True
            obs.emit(
                "standby.delta_rejected",
                severity="warn",
                error=repr(error),
                applied_seq=self.applied_seq,
            )
            return False
        if delta.base_image_id != self.image_id or delta.seq != self.applied_seq + 1:
            self.deltas_rejected += 1
            self.stale = True
            obs.emit(
                "standby.sequence_gap",
                severity="warn",
                got_seq=delta.seq,
                want_seq=self.applied_seq + 1,
            )
            return False
        self._graft_delta(delta)
        self.applied_seq = delta.seq
        self.expected_fingerprint = delta.fingerprint
        self.deltas_applied += 1
        self.node.kernel.clock.advance(delta.total_bytes() * APPLY_BYTE_NS)
        obs.incr("checkpoint.deltas_applied")
        return True

    def _graft_delta(self, delta: DeltaCheckpoint) -> None:
        processes = {p.pid: p for p in self.node.root.tree()}
        blob = delta.pages_blob
        for page in delta.meta["pages"]:
            process = processes[page["pid"]]
            mapping = process.space.mapping_at(page["mapping_base"])
            start = page["address"] - mapping.base
            mapping.data[start:start + page["length"]] = (
                blob[page["offset"]:page["offset"] + page["length"]]
            )
        for pid_text, record in delta.meta["records"].items():
            process = processes[int(pid_text)]
            _graft_heap(process.heap, record["heap"])
            fdtable = process.fdtable
            for fd, _kind, closed, _ref in record["fds"]:
                obj = fdtable.try_get(fd)
                if obj is not None and hasattr(obj, "closed"):
                    obj.closed = bool(closed)
            alloc = record["fd_alloc"]
            fdtable._next_reserved = alloc["next_reserved"]
            fdtable._next_stash = alloc["next_stash"]
            fdtable._blocked_numbers = set(alloc["blocked"])
        listeners = delta.meta.get("listeners")
        if listeners:
            net = self.node.kernel.net
            for port, _sock_id, closed, backlog in listeners:
                listener = net._listeners.get(port)
                if listener is not None:
                    listener.backlog = backlog
                    listener.closed = bool(closed)

    def resync(self, image: CheckpointImage, node_id: Optional[int] = None) -> None:
        """Replace the standby's tree from a fresh full image (stale exit)."""
        node_id = self.node.node_id if node_id is None else node_id
        self.node.teardown()
        self.node = restore_image(image, node_id=node_id, config=self.config)
        self.image_id = image.image_id
        self.applied_seq = 0
        self.stale = False
        self.expected_fingerprint = image.fingerprint
        obs.emit("standby.resynced", image_id=image.image_id)

    # -- failover --------------------------------------------------------------

    def promote(self) -> Node:
        """Verify integrity, release the barrier, and start serving.

        The verification is the restore-side half of the round-trip
        property: the standby's live tree must fingerprint byte-identical
        to the last checkpoint it applied.  A mismatch dumps the flight
        recorder (stamped with image id + delta seq) and raises
        ``PromotionError`` — the failover driver then falls back to a
        cold restore from the last durable image.
        """
        problems: List[str] = []
        with self.node.scope():
            try:
                fire(self.config, "standby.promote")
                live = self.node.fingerprint()
                problems = self.expected_fingerprint.diff(live)
                if problems:
                    raise PromotionError(
                        f"standby diverged from checkpoint seq {self.applied_seq}: "
                        + "; ".join(problems[:4])
                    )
            except BaseException as error:
                self._dump_blackbox(
                    "standby.promote_failed", problems or [repr(error)]
                )
                raise
        self.node.kernel.clock.advance(PROMOTE_BASE_NS)
        resume_node(self.node)
        self.promoted = True
        obs.incr("checkpoint.promotions")
        obs.emit(
            "standby.promoted",
            image_id=self.image_id,
            applied_seq=self.applied_seq,
            stale=self.stale,
        )
        return self.node

    def _dump_blackbox(self, reason: str, problems: List[str]) -> None:
        collector = self.node.collector
        self.last_blackbox = collector.recorder.dump(
            reason,
            failure_site="standby.promote",
            fingerprint=self.expected_fingerprint.summary(),
            image_version=self.image_id,
            last_applied_delta_seq=self.applied_seq,
            problems=problems[:16],
        )
        path = getattr(self.config, "blackbox_path", None)
        if path:
            try:
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(self.last_blackbox, handle, indent=2, sort_keys=True)
            except OSError:  # the dump must never make a failover worse
                pass
