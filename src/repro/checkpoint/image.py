"""Checkpoint image format: capture, encode/decode, durable file I/O.

Layout of an encoded image (all integers little-endian)::

    8 bytes   magic  b"MCRIMAGE"
    4 bytes   format version (u32)
    4 bytes   meta length   (u32)
    N bytes   meta JSON (sorted keys — byte-deterministic)
    4 bytes   CRC32 of the meta JSON
    ...       binary sections, at offsets recorded in meta["sections"]
              (relative to the end of the header), one per mapping,
              each independently CRC'd

The meta document carries everything needed to *validate* a restore
before mutating anything: the process tree shape (pids, names, parents,
thread call-stack positions), mapping/fd/listener/allocator records,
world-level counters, and the full ``TreeFingerprint`` of the source
tree at capture time.  ``decode`` verifies magic, version, and every
CRC up front and raises ``ImageError`` naming the failing section —
truncated, bit-flipped, or wrong-version images are rejected whole.

Capture quiesces the tree first (same barrier protocol as a live
update), so the image is a transactionally consistent cut; the pause is
charged to the virtual clock per byte serialized, which is what the
``bench failover`` cadence sweep measures against RTO.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, Optional

from repro import obs
from repro.errors import ImageError
from repro.mcr.config import MCRConfig
from repro.mcr.faults import TreeFingerprint, fire

MAGIC = b"MCRIMAGE"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<8sII")  # magic, format version, meta length

# Virtual-time cost of serializing/writing one image byte (ns).  Chosen
# so a typical single-process image (~5 MB) pauses the tree for ~5 ms —
# the same order as CRIU dumping a small tree to tmpfs.
SERIALIZE_BYTE_NS = 1


def section_name(pid: int, mapping_name: str, base: int) -> str:
    return f"mem/{pid}/{mapping_name}@0x{base:x}"


class CheckpointImage:
    """One decoded (or freshly captured) checkpoint image."""

    def __init__(self, meta: Dict[str, Any], sections: Dict[str, bytes]) -> None:
        self.meta = meta
        self.sections = sections

    @property
    def image_id(self) -> str:
        return self.meta["image_id"]

    @property
    def server(self) -> str:
        return self.meta["server"]

    @property
    def fingerprint(self) -> TreeFingerprint:
        return TreeFingerprint.from_dict(self.meta["fingerprint"])

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self.sections.values())

    # -- encoding --------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize deterministically (same tree state -> same bytes)."""
        names = sorted(self.sections)
        sections_meta: Dict[str, Any] = {}
        offset = 0
        for name in names:
            blob = self.sections[name]
            sections_meta[name] = {
                "offset": offset,
                "length": len(blob),
                "crc32": zlib.crc32(blob),
            }
            offset += len(blob)
        meta = dict(self.meta)
        meta["sections"] = sections_meta
        meta_blob = json.dumps(meta, sort_keys=True).encode()
        parts = [
            _HEADER.pack(MAGIC, FORMAT_VERSION, len(meta_blob)),
            meta_blob,
            struct.pack("<I", zlib.crc32(meta_blob)),
        ]
        parts.extend(self.sections[name] for name in names)
        return b"".join(parts)

    # -- decoding (validate everything, or raise ImageError) ------------------

    @classmethod
    def decode(cls, data: bytes) -> "CheckpointImage":
        if len(data) < _HEADER.size:
            raise ImageError("magic", f"truncated header ({len(data)} bytes)")
        magic, version, meta_len = _HEADER.unpack_from(data)
        if magic != MAGIC:
            raise ImageError("magic", f"bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise ImageError(
                "version", f"format {version}, this build reads {FORMAT_VERSION}"
            )
        meta_end = _HEADER.size + meta_len
        if len(data) < meta_end + 4:
            raise ImageError("meta", "truncated before end of meta")
        meta_blob = data[_HEADER.size:meta_end]
        (meta_crc,) = struct.unpack_from("<I", data, meta_end)
        if zlib.crc32(meta_blob) != meta_crc:
            raise ImageError("meta", "CRC mismatch (corrupt meta)")
        try:
            meta = json.loads(meta_blob)
        except ValueError as error:
            raise ImageError("meta", f"undecodable JSON: {error}") from None
        body = data[meta_end + 4:]
        sections: Dict[str, bytes] = {}
        for name, record in meta.get("sections", {}).items():
            start, length = record["offset"], record["length"]
            blob = body[start:start + length]
            if len(blob) != length:
                raise ImageError(name, "truncated section")
            if zlib.crc32(blob) != record["crc32"]:
                raise ImageError(name, "CRC mismatch (corrupt section)")
            sections[name] = blob
        return cls(meta, sections)


# -- capture -------------------------------------------------------------------


def _heap_record(heap: Any) -> Dict[str, Any]:
    return {
        "base": heap.base,
        "free": [[s, e] for s, e in heap._free.intervals()],
        "chunks": [
            [c.base, c.user_size, c.total_size, bool(c.startup), c.site_id]
            for c in heap.chunks()
        ],
        "reserved": [[b, s] for b, s in sorted(heap.reserved_ranges().items())],
        "startup_mode": heap.startup_mode,
        "deferred": list(heap._deferred_frees),
        "malloc_count": heap.malloc_count,
        "free_count": heap.free_count,
        "bytes_allocated": heap.bytes_allocated,
    }


def _process_record(process: Any) -> Dict[str, Any]:
    threads = [
        {
            "tid": t.tid,
            "name": t.name,
            "state": t.state,
            "at_barrier": bool(t.at_barrier),
            "call_stack": list(t.call_stack),
            "blocked_on": t.blocked_on,
        }
        for t in sorted(process.live_threads(), key=lambda t: t.tid)
    ]
    mappings = [
        {
            "name": m.name,
            "base": m.base,
            "size": m.size,
            "kind": m.kind,
            "section": section_name(process.pid, m.name, m.base),
            "write_seq": m.tracker.write_seq,
        }
        for m in sorted(process.space.mappings(), key=lambda m: m.base)
    ]
    fdtable = process.fdtable
    fds = [
        [fd, getattr(obj, "kind", "?"), bool(getattr(obj, "closed", False)),
         getattr(obj, "refcount", None)]
        for fd, obj in fdtable.items()
    ]
    return {
        "pid": process.pid,
        "name": process.name,
        "parent_pid": process.parent.pid if process.parent is not None else None,
        "threads": threads,
        "mappings": mappings,
        "heap": _heap_record(process.heap),
        "fds": fds,
        "fd_alloc": {
            "next_reserved": fdtable._next_reserved,
            "next_stash": fdtable._next_stash,
            "blocked": sorted(fdtable._blocked_numbers),
        },
    }


def capture_quiesced(node: Any, config: Optional[MCRConfig] = None) -> CheckpointImage:
    """Serialize an already-quiesced node's tree into an image.

    The caller holds the barrier (``checkpoint_node`` wraps the
    quiesce/release pair).  Fires the ``checkpoint.capture`` site and
    charges the serialization pause to the node's virtual clock.
    """
    config = config or node.session.config
    fire(config, "checkpoint.capture")
    kernel = node.kernel
    fingerprint = TreeFingerprint.capture(kernel, node.root)
    sections: Dict[str, bytes] = {}
    processes = []
    for process in node.root.tree():
        record = _process_record(process)
        processes.append(record)
        for mapping in sorted(process.space.mappings(), key=lambda m: m.base):
            name = section_name(process.pid, mapping.name, mapping.base)
            sections[name] = bytes(process.space.view(mapping.base, mapping.size))
    net = kernel.net
    meta: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "server": node.server,
        "program_version": int(node.program.version),
        "captured_ns": kernel.clock.now_ns,
        "fingerprint": fingerprint.to_dict(),
        "namespace": {"next_pid": kernel.pidns._next_pid},
        "net": {
            "next_sock_id": net._next_sock_id,
            "next_conn_id": net._next_conn_id,
            "next_pair_id": net._next_pair_id,
            "next_epoll_id": net._next_epoll_id,
            "total_connections": net.total_connections,
        },
        "listeners": [
            [port, listener.sock_id, bool(listener.closed), listener.backlog]
            for port, listener in sorted(net._listeners.items())
        ],
        "processes": processes,
    }
    # Identity: a CRC over the structural meta + payload CRCs, so two
    # captures of byte-identical trees get the same id.
    digest = zlib.crc32(json.dumps(meta, sort_keys=True).encode())
    for name in sorted(sections):
        digest = zlib.crc32(sections[name], digest)
    meta["image_id"] = f"img-{digest:08x}"
    image = CheckpointImage(meta, sections)
    pause_ns = image.total_bytes() * SERIALIZE_BYTE_NS
    kernel.clock.advance(pause_ns)
    obs.incr("checkpoint.images")
    obs.incr("checkpoint.image_bytes", image.total_bytes())
    obs.emit(
        "checkpoint.captured",
        image_id=meta["image_id"],
        bytes=image.total_bytes(),
        pause_ns=pause_ns,
    )
    return image


def checkpoint_node(node: Any, config: Optional[MCRConfig] = None) -> CheckpointImage:
    """Quiesce ``node``, capture a full image, resume serving.

    The standard entry point for a running primary; fires the
    ``checkpoint.capture`` site inside the barrier so an injected crash
    leaves the tree quiesced-but-intact (the release in the finally
    resumes it — a failed checkpoint never takes the primary down).
    """
    config = config or node.session.config
    with node.scope():
        with obs.span("checkpoint", server=node.server):
            protocol = node.session.quiescence
            protocol.request()
            try:
                protocol.wait(node.root, config=config)
                return capture_quiesced(node, config)
            finally:
                protocol.release()


# -- durable file I/O ----------------------------------------------------------


def write_image(
    image: CheckpointImage,
    path: str,
    config: Optional[MCRConfig] = None,
) -> int:
    """Write ``image`` to ``path`` atomically; returns bytes written.

    Fires the ``checkpoint.write`` site *before* the rename: an injected
    mid-file death leaves only the temporary file behind, never a torn
    image at ``path`` — the last good image stays readable.
    """
    blob = image.encode()
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
        fire(config, "checkpoint.write")
        handle.write(blob[len(blob) // 2:])
    os.replace(tmp_path, path)
    obs.incr("checkpoint.image_writes")
    return len(blob)


def read_image(path: str) -> CheckpointImage:
    """Read and fully validate a durable image (``ImageError`` on damage)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise ImageError("magic", f"unreadable image file: {error}") from None
    return CheckpointImage.decode(data)
