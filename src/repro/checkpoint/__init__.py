"""``repro.checkpoint`` — durable checkpoint images and warm standbys.

The live-update plane (``repro.mcr``) keeps a server alive across a
*version* change; this package keeps its *state* alive across a host
crash.  Four pieces:

* ``image``   — a deterministic, versioned on-disk serialization of one
  quiesced server tree: every mapping's bytes (read through the
  zero-copy ``AddressSpace.view`` windows), the fd/listener/socket
  tables, ptmalloc bookkeeping, and per-thread call-stack positions,
  integrity-headed by the same ``TreeFingerprint`` the rollback
  verifier uses.  Written atomically (tmp + rename), so a torn write
  never replaces the last good image.
* ``restore`` — rehydrates an image into a fresh ``Node``
  (boot-and-graft: boot the same server version to its deterministic
  quiesced shape, validate *everything* against the image, then overlay
  the mutable state).  A bad image raises ``ImageError`` naming the
  failing section *before* any mutation — never a partial restore.
* ``delta``   — incremental checkpoints: after a full image, only the
  pages written since (via ``PageTracker.pages_written_since``) plus
  any changed fd/allocator/listener records, each stamped with a
  sequence number and the base image id.
* ``standby`` — a warm standby continuously applying the delta stream
  to a restored-but-still-quiesced twin, promotable in milliseconds
  when the primary dies (``repro.fleet.failover`` drives the drills).
"""

from repro.checkpoint.delta import (
    DeltaBaseline,
    DeltaCheckpoint,
    capture_delta,
    capture_delta_locked,
    hold_quiesced,
)
from repro.checkpoint.image import (
    FORMAT_VERSION,
    CheckpointImage,
    checkpoint_node,
    read_image,
    write_image,
)
from repro.checkpoint.restore import restore_image, resume_node
from repro.checkpoint.standby import StandbyChannel, WarmStandby

__all__ = [
    "CheckpointImage",
    "DeltaBaseline",
    "DeltaCheckpoint",
    "FORMAT_VERSION",
    "StandbyChannel",
    "WarmStandby",
    "capture_delta",
    "capture_delta_locked",
    "checkpoint_node",
    "hold_quiesced",
    "read_image",
    "restore_image",
    "resume_node",
    "write_image",
]
