"""Deterministic virtual clock used by the simulated machine.

The paper reports run-time overheads as *ratios* against an uninstrumented
baseline (Table 3).  Measuring wall-clock time of a Python simulator would
drown those ratios in interpreter noise, so the kernel charges every
simulated operation a deterministic cost through this clock.  The cost model
lives with the syscall table (``repro.kernel.syscalls``); the clock itself
only accumulates.

Costs are expressed in nanoseconds of simulated time.  Instrumented builds
charge extra cost per intercepted operation (allocator tagging, dirty-page
faults, unblockification timeouts), which is what produces Table-3-shaped
ratios deterministically.
"""

from __future__ import annotations

NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def ns_to_ms(ns: int) -> float:
    """Canonical ns -> ms conversion (the one place, not ad-hoc ``/ 1e6``)."""
    return ns / NS_PER_MS


def fmt_ms(ns: int, digits: int = 2) -> str:
    """Render a nanosecond duration as ``'12.34 ms'``."""
    return f"{ns / NS_PER_MS:.{digits}f} ms"


def fmt_value(value) -> str:
    """Format one table/report cell: floats to 3 decimals, rest verbatim."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class VirtualClock:
    """Monotonic, manually-advanced nanosecond clock."""

    def __init__(self, start_ns: int = 0) -> None:
        self._now_ns = start_ns

    @property
    def now_ns(self) -> int:
        return self._now_ns

    @property
    def now_ms(self) -> float:
        return ns_to_ms(self._now_ns)

    def advance(self, delta_ns: int) -> int:
        """Advance the clock by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError(f"clock cannot go backwards: {delta_ns}")
        self._now_ns += delta_ns
        return self._now_ns

    def elapsed_since(self, t0_ns: int) -> int:
        return self._now_ns - t0_ns


class StopWatch:
    """Measures an interval of virtual time.

    Usage::

        watch = StopWatch(clock)
        ... run simulated work ...
        duration_ns = watch.elapsed_ns()
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start_ns = clock.now_ns

    def elapsed_ns(self) -> int:
        return self._clock.elapsed_since(self._start_ns)

    def elapsed_ms(self) -> float:
        return ns_to_ms(self.elapsed_ns())

    def restart(self) -> None:
        self._start_ns = self._clock.now_ns
