"""Regenerates Figure 3: state-transfer time vs open connections."""

import pytest

from repro.bench.figure3 import measure_point, render, run_figure3

COUNTS = (0, 5, 10, 20)


@pytest.fixture(scope="module")
def figure3():
    return run_figure3(connection_counts=COUNTS)


@pytest.mark.paper
class TestFigure3Shape:
    def test_print_figure(self, figure3):
        print()
        print(render(figure3))

    def test_all_points_committed(self, figure3):
        for server, points in figure3.items():
            for point in points:
                assert point.committed, f"{server} N={point.connections}: {point.error}"

    def test_transfer_time_grows_with_connections(self, figure3):
        for server, points in figure3.items():
            times = [p.transfer_ms for p in points]
            assert times[-1] > times[0], f"{server}: {times}"
            # Monotonic non-decreasing within measurement granularity.
            for earlier, later in zip(times, times[1:]):
                assert later >= earlier - 0.2, f"{server}: {times}"

    def test_per_connection_process_servers_grow_fastest(self, figure3):
        """Paper: vsftpd/OpenSSH steepest — each connection is a process."""

        def slope(points):
            return (points[-1].transfer_ms - points[0].transfer_ms) / (
                points[-1].connections - points[0].connections
            )

        for forked in ("vsftpd", "opensshd"):
            for threaded in ("httpd", "nginx"):
                assert slope(figure3[forked]) > slope(figure3[threaded]) * 3

    def test_baselines_in_tens_of_ms(self, figure3):
        """Paper: 28-187 ms with no connections (we assert the decade)."""
        for server, points in figure3.items():
            baseline = points[0].transfer_ms
            assert 5.0 < baseline < 200.0, f"{server}: {baseline}"

    def test_dirty_tracking_reduces_transferred_state(self, figure3):
        """Paper: 68-86% of state skipped at 100 connections."""
        for server, points in figure3.items():
            assert points[-1].dirty_reduction > 0.40, (
                f"{server}: {points[-1].dirty_reduction:.0%}"
            )

    def test_update_stays_subsecond(self, figure3):
        for server, points in figure3.items():
            for point in points:
                assert point.total_update_ms < 1000.0


def test_benchmark_transfer_with_connections(benchmark):
    """pytest-benchmark target: one update at 10 open connections."""
    point = benchmark.pedantic(
        measure_point, args=("vsftpd", 10), rounds=1, iterations=1
    )
    assert point.committed
