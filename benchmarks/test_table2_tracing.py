"""Regenerates Table 2: mutable tracing statistics."""

import pytest

from repro.bench.table2 import render, run_table2, trace_statistics


@pytest.fixture(scope="module")
def table2():
    return run_table2()


@pytest.mark.paper
class TestTable2Shape:
    def test_print_table(self, table2):
        print()
        print(render(table2))

    def test_likely_pointers_cannot_be_ignored(self, table2):
        """The paper's first conclusion: many legitimate likely pointers."""
        total_likely = sum(r["likely"]["ptr"] for r in table2.values())
        assert total_likely > 0

    def test_uninstrumented_allocators_dominate_likely(self, table2):
        """httpd (pools) >= nginx (regions+slabs) >> fully instrumented."""
        assert table2["httpd"]["likely"]["ptr"] > table2["nginx"]["likely"]["ptr"]
        assert table2["nginx"]["likely"]["ptr"] > table2["vsftpd"]["likely"]["ptr"]
        assert table2["nginx"]["likely"]["ptr"] > table2["opensshd"]["likely"]["ptr"]

    def test_region_instrumentation_mitigates_but_not_eliminates(self, table2):
        """nginx_reg: more precise, fewer likely, but some remain (slabs)."""
        assert (
            table2["nginx_reg"]["precise"]["ptr"] > table2["nginx"]["precise"]["ptr"]
        )
        assert table2["nginx_reg"]["likely"]["ptr"] < table2["nginx"]["likely"]["ptr"]
        assert table2["nginx_reg"]["likely"]["ptr"] > 0

    def test_instrumented_programs_keep_residual_likely(self, table2):
        """Type-unsafe idioms survive full instrumentation (paper: 6/56)."""
        assert table2["vsftpd"]["likely"]["ptr"] >= 1
        assert table2["opensshd"]["likely"]["ptr"] >= 1
        # ... but they are small compared to precise coverage.
        assert (
            table2["opensshd"]["precise"]["ptr"]
            > table2["opensshd"]["likely"]["ptr"]
        )

    def test_opensshd_points_into_library_state(self, table2):
        """Paper: program pointers into shared-library state exist."""
        lib_targets = (
            table2["opensshd"]["precise"]["targ_lib"]
            + table2["opensshd"]["likely"]["targ_lib"]
        )
        assert lib_targets >= 1

    def test_likely_targets_split_static_and_dynamic(self, table2):
        """Strings attract likely pointers into statics (paper note)."""
        httpd_likely = table2["httpd"]["likely"]
        assert httpd_likely["targ_static"] > 0
        assert httpd_likely["targ_dynamic"] > 0


def test_benchmark_trace(benchmark):
    """pytest-benchmark target: quiesce + full hybrid trace of vsftpd."""
    totals = benchmark.pedantic(
        trace_statistics, args=("vsftpd",), kwargs={"held_connections": 2},
        rounds=1, iterations=1,
    )
    assert totals["precise"]["ptr"] > 0
