"""Regenerates the §8 memory-usage evaluation."""

import pytest

from repro.bench.memusage import average_rss_overhead, measure_server, render, run_memusage


@pytest.fixture(scope="module")
def memusage():
    return run_memusage()


@pytest.mark.paper
class TestMemUsageShape:
    def test_print_table(self, memusage):
        print()
        print(render(memusage))

    def test_binary_overhead_band(self, memusage):
        """Paper: 118.7%-235.2% binary-size overhead."""
        for server, row in memusage.items():
            assert 0.9 < row["binary_overhead"] < 3.0, (
                f"{server}: {row['binary_overhead']:.2f}"
            )

    def test_rss_overhead_is_a_small_multiple(self, memusage):
        """Paper: 110.0%-483.6% RSS overhead."""
        for server, row in memusage.items():
            assert 0.8 < row["rss_overhead"] < 6.0, (
                f"{server}: {row['rss_overhead']:.2f}"
            )

    def test_average_in_paper_band(self, memusage):
        """Paper: 288.5% average ('3.9x memory')."""
        average = average_rss_overhead(memusage)
        assert 1.0 < average < 5.0, f"average: {average:.2f}"

    def test_small_binaries_pay_relatively_more(self, memusage):
        """The fixed libmcr cost weighs more on small programs."""
        assert (
            memusage["vsftpd"]["binary_overhead"]
            > memusage["httpd"]["binary_overhead"]
        )


def test_benchmark_memusage(benchmark):
    result = benchmark.pedantic(
        measure_server, args=("vsftpd",), rounds=1, iterations=1
    )
    assert result["rss_overhead"] > 0
