"""Regenerates the §8 update-time evaluation (components + bounds)."""

import pytest

from repro.bench.updatetime import (
    measure_quiescence_under_load,
    measure_update_components,
    render,
    run_updatetime,
)


@pytest.fixture(scope="module")
def updatetime():
    return run_updatetime()


@pytest.mark.paper
class TestUpdateTimeShape:
    def test_print_table(self, updatetime):
        print()
        print(render(updatetime))

    def test_quiescence_under_100ms(self, updatetime):
        """Paper: all programs converge in less than 100 ms."""
        for server, row in updatetime.items():
            assert row["quiescence_ms"] < 100.0, f"{server}: {row['quiescence_ms']}"

    def test_quiescence_workload_independent(self, updatetime):
        """Paper: convergence time is workload-independent."""
        for server, row in updatetime.items():
            assert abs(row["loaded_ms"] - row["idle_ms"]) < 50.0, (
                f"{server}: idle={row['idle_ms']} loaded={row['loaded_ms']}"
            )

    def test_control_migration_under_50ms(self, updatetime):
        """Paper: record and replay both complete in < 50 ms."""
        for server, row in updatetime.items():
            assert row["control_migration_ms"] < 50.0, server

    def test_replay_overhead_band(self, updatetime):
        """Paper: 1-45% overhead over the original startup time."""
        for server, row in updatetime.items():
            assert -0.05 < row["replay_overhead"] < 0.60, (
                f"{server}: {row['replay_overhead']:.2f}"
            )

    def test_total_update_subsecond(self, updatetime):
        """Paper: realistic update times (< 1 s)."""
        for server, row in updatetime.items():
            assert row["total_ms"] < 1000.0, server


def test_benchmark_full_update(benchmark):
    """pytest-benchmark target: one complete httpd live update."""
    result = benchmark.pedantic(
        measure_update_components, args=("httpd",), rounds=1, iterations=1
    )
    assert result["total_ms"] > 0
