"""Ablation benches: what each MCR design choice buys (DESIGN.md)."""

import pytest

from repro.bench.ablations import (
    ablate_dirty_tracking,
    ablate_int64_policy,
    ablate_interior_only,
    ablate_parallel_transfer,
    render_all,
)


@pytest.mark.paper
class TestAblations:
    def test_print_all(self):
        print()
        print(render_all())

    def test_dirty_tracking_reduces_work(self):
        result = ablate_dirty_tracking("vsftpd", connections=6)
        assert result["objects_without"] > result["objects_with"] * 3
        # Parallelism and fixed coordination costs hide much of it
        # wall-clock; the pure per-object work shows the real saving.
        assert result["work_speedup"] > 1.25
        assert result["serial_speedup"] > 1.05
        assert result["speedup"] >= 1.0

    def test_parallel_transfer_beats_serial_for_process_trees(self):
        result = ablate_parallel_transfer("vsftpd", connections=6)
        assert result["processes"] >= 7  # master + sessions
        assert result["speedup"] > 1.0

    def test_int64_policy_finds_hidden_pointers(self):
        counts = ablate_int64_policy("nginx")
        # Without the policy, the encoded-conf idiom goes unseen.
        assert counts["likely_on"] > counts["likely_off"]

    def test_interior_only_reduces_nonupdatable_set(self):
        counts = ablate_interior_only("httpd")
        assert counts["interior_only"] <= counts["strict"]


def test_benchmark_dirty_ablation(benchmark):
    result = benchmark.pedantic(
        ablate_dirty_tracking, args=("vsftpd", 4), rounds=1, iterations=1
    )
    assert result["speedup"] >= 1.0
