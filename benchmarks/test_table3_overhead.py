"""Regenerates Table 3: run time normalized against the baseline."""

import pytest

from repro.bench.table3 import PAPER_TABLE3, measure_runtime_ns, render, run_table3


@pytest.fixture(scope="module")
def table3():
    return run_table3()


@pytest.mark.paper
class TestTable3Shape:
    def test_print_table(self, table3):
        print()
        print(render(table3))

    def test_unblockification_is_nearly_free(self, table3):
        """Paper: marginal overhead (worst case 2.4%, vsftpd)."""
        for server, row in table3.items():
            assert row["Unblock"] < 1.04, f"{server}: {row['Unblock']}"

    def test_allocator_instrumentation_is_the_visible_cost(self, table3):
        """httpd's +SInstr jump dominates its ladder (paper: 1.040)."""
        httpd = table3["httpd"]
        sinstr_delta = httpd["+SInstr"] - httpd["Unblock"]
        qdet_delta = httpd["+QDet"] - httpd["+DInstr"]
        assert sinstr_delta > qdet_delta
        assert 1.02 < httpd["+SInstr"] < 1.10

    def test_nginx_uninstrumented_is_flat(self, table3):
        """Paper: nginx 1.000 across the board."""
        row = table3["nginx"]
        assert all(v < 1.03 for v in row.values()), row

    def test_nginx_reg_is_the_outlier(self, table3):
        """Paper: region instrumentation costs ~19% worst case."""
        reg = table3["nginx_reg"]["+QDet"]
        assert reg > 1.10
        assert reg < 1.35
        for server in ("httpd", "nginx", "vsftpd", "opensshd"):
            assert table3[server]["+QDet"] < reg

    def test_full_mcr_overhead_is_single_digit_except_reg(self, table3):
        """Paper: 4.7% worst case (httpd) for the full solution."""
        for server in ("httpd", "nginx", "vsftpd", "opensshd"):
            assert table3[server]["+QDet"] < 1.10, server

    def test_ladder_is_cumulative(self, table3):
        """Each configuration includes the previous one's cost."""
        for server, row in table3.items():
            assert row["+SInstr"] >= row["Unblock"] - 0.02
            assert row["+DInstr"] >= row["+SInstr"] - 0.02


def test_benchmark_workload(benchmark):
    """pytest-benchmark target: one full nginx AB run (host time)."""
    duration_ns = benchmark.pedantic(
        measure_runtime_ns, args=("nginx", "+QDet"), rounds=1, iterations=1
    )
    assert duration_ns > 0
