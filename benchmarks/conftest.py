"""Benchmark-suite configuration.

Each benchmark file regenerates one paper table/figure: it prints the
table (run pytest with ``-s`` to see it), asserts the paper's *shape*
(orderings, bands, crossovers — not absolute numbers), and times the
harness's core operation through pytest-benchmark.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: regenerates a table/figure from the paper"
    )
