"""Regenerates the §8 SPEC CPU2006 allocator-instrumentation experiment."""

import pytest

from repro.bench.spec2006 import WORKLOAD_MIXES, measure_spec, render, run_spec


@pytest.fixture(scope="module")
def spec():
    return run_spec()


@pytest.mark.paper
class TestSpecShape:
    def test_print_table(self, spec):
        print()
        print(render(spec))

    def test_most_benchmarks_under_five_percent(self, spec):
        """Paper: 5% worst-case across all benchmarks except perlbench."""
        for name, ratio in spec.items():
            if name == "perlbench":
                continue
            assert ratio < 1.06, f"{name}: {ratio}"

    def test_perlbench_is_the_outlier(self, spec):
        """Paper: perlbench 36% — a microbenchmark for the wrappers."""
        assert spec["perlbench"] > 1.20
        assert spec["perlbench"] < 1.60
        assert spec["perlbench"] == max(spec.values())

    def test_overhead_tracks_allocation_intensity(self, spec):
        """More allocations per unit of work => more overhead."""
        ordered = sorted(
            WORKLOAD_MIXES,
            key=lambda n: WORKLOAD_MIXES[n]["allocs"] / WORKLOAD_MIXES[n]["compute_ns"],
        )
        ratios = [spec[name] for name in ordered]
        assert ratios[-1] == max(ratios)
        assert ratios[0] == min(ratios)


def test_benchmark_alloc_microbench(benchmark):
    """pytest-benchmark target: the perlbench-analogue instrumented run."""
    duration_ns = benchmark.pedantic(
        measure_spec, args=("perlbench", True), rounds=1, iterations=1
    )
    assert duration_ns > 0
