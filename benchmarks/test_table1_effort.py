"""Regenerates Table 1: programs, updates, and engineering effort."""

import pytest

from repro.bench.table1 import PAPER_PROFILING, effort_row, profile_server, render, run_table1
from repro.servers.updates import ALL_SERIES


@pytest.fixture(scope="module")
def table1():
    return run_table1()


@pytest.mark.paper
class TestTable1Shape:
    def test_print_table(self, table1):
        print()
        print(render(table1))

    def test_nginx_is_purely_event_driven(self, table1):
        # The paper's signature nginx property: no volatile QPs at all.
        assert table1["nginx"]["Vol"] == 0
        assert table1["nginx"]["Per"] == table1["nginx"]["QP"]

    def test_session_servers_have_volatile_points(self, table1):
        assert table1["vsftpd"]["Vol"] >= 1
        assert table1["opensshd"]["Vol"] >= 1
        # And exactly one persistent point (the master accept loop).
        assert table1["vsftpd"]["Per"] == 1
        assert table1["opensshd"]["Per"] == 1

    def test_httpd_mixes_persistent_and_volatile(self, table1):
        assert table1["httpd"]["Per"] >= 3
        assert table1["httpd"]["Vol"] >= 1

    def test_opensshd_has_short_lived_classes(self, table1):
        # daemonize + exec'd helpers: the paper reports SL=3.
        assert table1["opensshd"]["SL"] >= 2

    def test_nginx_series_is_largest(self, table1):
        assert table1["nginx"]["Num"] == 25
        for other in ("httpd", "vsftpd", "opensshd"):
            assert table1[other]["Num"] == 5

    def test_nginx_patches_are_smallest_per_release(self, table1):
        # "nginx's tight release cycle generally produces much smaller
        # patches than those of all the other programs considered."
        nginx_per = table1["nginx"]["LOC"] / table1["nginx"]["Num"]
        for other in ("httpd", "vsftpd", "opensshd"):
            other_per = table1[other]["LOC"] / table1[other]["Num"]
            assert nginx_per < other_per

    def test_annotation_loc_matches_paper_accounting(self, table1):
        # The annotation registries carry the paper's per-program LOC.
        assert table1["httpd"]["Ann"] == 181
        assert table1["nginx"]["Ann"] == 22
        assert table1["vsftpd"]["Ann"] == 82
        assert table1["opensshd"]["Ann"] == 49

    def test_type_changes_detected_structurally(self, table1):
        for server in ("httpd", "nginx", "vsftpd", "opensshd"):
            assert table1[server]["Type"] >= 2

    def test_semantic_update_accounts_st_loc(self, table1):
        assert table1["httpd"]["ST"] > 0


def test_benchmark_profiler(benchmark):
    """pytest-benchmark target: one full quiescence-profiling run."""
    result = benchmark.pedantic(
        profile_server, args=("nginx",), rounds=1, iterations=1
    )
    assert result["LL"] == 2
