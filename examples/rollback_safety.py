#!/usr/bin/env python3
"""Atomic rollback: failed updates are invisible to clients.

Demonstrates the paper's reversibility guarantee on Apache httpd:

1. a *hostile* update — the new version still carries Apache's
   "detect my own running instance and abort" behaviour (no MCR
   preparation) — fails during control migration and rolls back;
2. a *conflicting* update — the running config was changed, so the
   recorded startup no longer matches — is flagged by mutable
   reinitialization and rolls back;
3. in both cases the old version resumes from its checkpoint and the
   same client connection keeps working;
4. the properly prepared update then commits.

Run:  python examples/rollback_safety.py
"""

from repro.kernel import Kernel, sim_function
from repro.mcr.ctl import McrCtl
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import httpd, simple
from repro.servers.common import connect_with_retry, recv_line


@sim_function
def one_get(sys, port, path, replies):
    fd = yield from connect_with_retry(sys, port)
    yield from sys.send(fd, f"GET {path}\n".encode())
    line = yield from recv_line(sys, fd)
    replies.append(line.decode().strip())
    yield from sys.close(fd)


def main() -> None:
    kernel = Kernel()
    httpd.setup_world(kernel)
    program = httpd.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    load_program(kernel, program, build=BuildConfig.full(), session=session)
    replies = []
    kernel.spawn_process(one_get, args=(80, "/index.html", replies))
    kernel.run(max_steps=600_000, until=lambda: len(replies) == 1)
    print("v1 serving:", replies[-1])
    ctl = McrCtl(kernel, session)

    # 1. The unprepared v2 aborts when it sees the running instance.
    print("\n-- attempt 1: unprepared v2 (aborts on own pidfile) --")
    result = ctl.live_update(httpd.make_program(2, mcr_prepared=False))
    print(f"   rolled back: {result.rolled_back}  ({result.error})")
    assert result.rolled_back

    kernel.spawn_process(one_get, args=(80, "/file1k.bin", replies))
    kernel.run(max_steps=600_000, until=lambda: len(replies) == 2)
    print("   v1 still serving:", replies[-1])

    # 2. A config change makes the recorded startup unmatchable.
    print("\n-- attempt 2: config changed under the server's feet --")
    kernel.fs.create("/etc/httpd.conf", b"8088")  # different port now
    result = ctl.live_update(httpd.make_program(2))
    print(f"   rolled back: {result.rolled_back}  ({result.error})")
    assert result.rolled_back
    kernel.fs.create("/etc/httpd.conf", b"80")  # restore

    kernel.spawn_process(one_get, args=(80, "/index.html", replies))
    kernel.run(max_steps=600_000, until=lambda: len(replies) == 3)
    print("   v1 still serving:", replies[-1])

    # 3. The prepared update commits.
    print("\n-- attempt 3: properly prepared v2 --")
    result = ctl.live_update(httpd.make_program(2))
    print(f"   committed: {result.committed} in {result.total_ms():.2f} ms")
    assert result.committed

    kernel.spawn_process(one_get, args=(80, "/big.bin", replies))
    kernel.run(max_steps=600_000, until=lambda: len(replies) == 4)
    print("   v2 serving:", replies[-1])
    print("\nOK: two failed attempts were invisible; the third committed.")


if __name__ == "__main__":
    main()
