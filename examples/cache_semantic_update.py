#!/usr/bin/env python3
"""Semantic state transformation: when automation isn't enough.

A memcached-style cache is live-updated to a release that adds a per-entry
integrity checksum which the new code *verifies on every read*.  Mutable
tracing happily transfers the entries and default-initializes the new
field — and every cached value then reads back CORRUPT.  The shipped
``MCR_ADD_OBJ_HANDLER`` on the entry type derives the checksum during
transfer; with it the whole cache survives.

This is the paper's "state transfer code" category (793 LOC across their
40 updates): transformations whose *meaning* no tracer can infer.

Run:  python examples/cache_semantic_update.py
"""

import repro
from repro.kernel import sim_function
from repro.servers import memcache
from repro.servers.common import connect_with_retry, recv_line


@sim_function
def client(sys, commands, replies):
    fd = yield from connect_with_retry(sys, memcache.PORT_MEMCACHE)
    for command in commands:
        yield from sys.send(fd, (command + "\n").encode())
        line = yield from recv_line(sys, fd)
        replies.append(line.decode().strip())
    yield from sys.close(fd)


def talk(world, commands):
    replies = []
    world.kernel.spawn_process(client, args=(commands, replies))
    world.kernel.run(max_steps=500_000, until=lambda: len(replies) == len(commands))
    return replies


def run_scenario(with_handler: bool):
    world = repro.boot("memcache")
    talk(world, [f"SET user:{i} payload-{i}" for i in range(5)])
    print(f"  cached 5 entries under v1; updating to v3 "
          f"({'with' if with_handler else 'WITHOUT'} the ST handler)...")
    program_v3 = memcache.make_program(3, with_st_handler=with_handler)
    result = repro.live_update(world, program=program_v3)
    assert result.committed, result.error
    replies = talk(world, ["GET user:0", "GET user:3", "NSTATS"])
    for reply in replies:
        print(f"    v3 replies: {reply}")
    return replies


def main() -> None:
    print("== scenario A: automated transfer only ==")
    replies = run_scenario(with_handler=False)
    assert replies[0] == replies[1] == "CORRUPT"
    print("  -> transferred entries fail the new integrity check.\n")

    print("== scenario B: with the semantic MCR_ADD_OBJ_HANDLER ==")
    replies = run_scenario(with_handler=True)
    assert replies[0] == "VALUE payload-0"
    assert replies[1] == "VALUE payload-3"
    print("  -> the handler derived every checksum during transfer.")
    print("\nOK: semantic transformations need user code; MCR gives it a hook.")


if __name__ == "__main__":
    main()
