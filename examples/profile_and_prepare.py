#!/usr/bin/env python3
"""The build-time half of the MCR workflow: profile, inspect, prepare.

Mirrors Figure 1's left side: run the quiescence profiler on each server
under its §8 test workload, print the per-thread report (this is what the
user feeds into the instrumentation), and show the annotation inventory
each program ships with.

Run:  python examples/profile_and_prepare.py
"""

from repro.kernel import Kernel
from repro.mcr.quiescence.profiler import QuiescenceProfiler
from repro.servers import httpd, nginx, opensshd, vsftpd
from repro.workloads import profiles

SUBJECTS = [
    ("httpd", httpd, profiles.web_profile(80)),
    ("nginx", nginx, profiles.web_profile(8081)),
    ("vsftpd", vsftpd, profiles.ftp_profile(21)),
    ("opensshd", opensshd, profiles.ssh_profile(22)),
]


def main() -> None:
    for name, module, workload in SUBJECTS:
        kernel = Kernel()
        module.setup_world(kernel)
        program = module.make_program(1)
        profiler = QuiescenceProfiler(kernel)
        report = profiler.profile(program, workload)
        print(report.render())
        declared = program.quiescent_points
        profiled = report.quiescent_points()
        marker = "match" if profiled == declared else "DIFFER"
        print(f"profiled vs declared quiescent points: {marker}")
        annotations = program.annotations
        print(
            f"annotations shipped: {annotations.annotation_loc()} LOC "
            f"({len(annotations.obj_handlers)} object handlers, "
            f"{len(annotations.reinit_handlers)} reinit handlers, "
            f"{len(annotations.encoded_pointers)} encoded-pointer notes)"
        )
        print()


if __name__ == "__main__":
    main()
