#!/usr/bin/env python3
"""Quickstart: live-update the Listing-1 example server.

Walks the paper's §3 workflow end to end on the simulated machine:

1. build & run the MCR-enabled server (v1);
2. push some state into it from a client;
3. signal a live update to v2 (whose list-node type grows a field —
   the paper's Figure 2 transformation);
4. verify the state survived and the new code is serving.

Run:  python examples/quickstart.py
"""

from repro.kernel import Kernel, sim_function
from repro.mcr.ctl import McrCtl
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import simple
from repro.servers.common import PORT_SIMPLE, connect_with_retry, recv_line


@sim_function
def client(sys, commands, replies):
    fd = yield from connect_with_retry(sys, PORT_SIMPLE)
    for command in commands:
        yield from sys.send(fd, (command + "\n").encode())
        line = yield from recv_line(sys, fd)
        replies.append(line.decode().strip())
    yield from sys.close(fd)


def main() -> None:
    # --- build & run v1 -------------------------------------------------
    kernel = Kernel()
    simple.setup_world(kernel)
    program_v1 = simple.make_program(1)
    session = MCRSession(kernel, program_v1, BuildConfig.full())
    load_program(kernel, program_v1, build=BuildConfig.full(), session=session)

    print("== v1 serving ==")
    replies = []
    kernel.spawn_process(client, args=(["push 10", "push 20", "version"], replies))
    kernel.run(max_steps=200_000, until=lambda: len(replies) == 3)
    for reply in replies:
        print("  client <-", reply)

    ctl = McrCtl(kernel, session)
    print("\n== mcr-ctl status ==")
    for key, value in ctl.status().items():
        print(f"  {key}: {value}")

    # --- live update to v2 ----------------------------------------------
    print("\n== live update v1 -> v2 ==")
    result = ctl.live_update(simple.make_program(2))
    print(f"  committed: {result.committed}")
    print(f"  quiescence:        {result.quiescence_ns / 1e6:7.2f} ms")
    print(f"  control migration: {result.control_migration_ns / 1e6:7.2f} ms")
    print(f"  state transfer:    {result.transfer_ns / 1e6:7.2f} ms")
    print(f"  total:             {result.total_ms():7.2f} ms")

    # --- v2 serving with v1's state --------------------------------------
    print("\n== v2 serving (state transferred) ==")
    replies = []
    kernel.spawn_process(client, args=(["sum", "version", "push 5", "sum"], replies))
    kernel.run(max_steps=300_000, until=lambda: len(replies) == 4)
    for reply in replies:
        print("  client <-", reply)
    assert replies == ["sum 30", "version 2", "ok 3", "sum 35"]
    print("\nOK: the v1 list survived the update and v2 extends it.")


if __name__ == "__main__":
    main()
