#!/usr/bin/env python3
"""Walk nginx through a whole release line without dropping a connection.

The paper evaluates 25 consecutive nginx updates (v0.8.54–v1.0.15); this
example live-updates the simulated nginx through several releases of its
series — including the type-changing ones — while a client keeps one
keep-alive connection open through *all* of them.

Run:  python examples/rolling_nginx_releases.py
"""

from repro.kernel import Kernel, sim_function
from repro.mcr.ctl import McrCtl
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import nginx
from repro.servers.common import PORT_NGINX, connect_with_retry, recv_line

RELEASES = (2, 3, 4, 7, 8, 12, 13)  # 3, 7, 12 change structure layouts

state = {"stop": False, "log": []}


@sim_function
def long_lived_client(sys):
    """Holds one connection open across every update, polling STATS."""
    fd = yield from connect_with_retry(sys, PORT_NGINX)
    while not state["stop"]:
        yield from sys.send(fd, b"STATS\n")
        line = yield from recv_line(sys, fd)
        state["log"].append(line.decode().strip())
        yield from sys.nanosleep(30_000_000)
    yield from sys.close(fd)


def main() -> None:
    kernel = Kernel()
    nginx.setup_world(kernel)
    program = nginx.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    load_program(kernel, program, build=BuildConfig.full(), session=session)

    kernel.spawn_process(long_lived_client, name="poller")
    kernel.run(max_steps=300_000, until=lambda: len(state["log"]) >= 2)
    print("v1 serving:", state["log"][-1])

    ctl = McrCtl(kernel, session)
    for version in RELEASES:
        before = len(state["log"])
        result = ctl.live_update(nginx.make_program(version))
        if not result.committed:
            raise SystemExit(f"update to v{version} failed: {result.error}")
        kernel.run(max_steps=400_000, until=lambda: len(state["log"]) > before + 1)
        print(
            f"updated to v{version} in {result.total_ms():6.2f} ms "
            f"(transfer {result.transfer_ns / 1e6:5.2f} ms); "
            f"same connection now sees: {state['log'][-1]}"
        )
        assert state["log"][-1].endswith(f"v{version}")

    state["stop"] = True
    kernel.run(max_steps=400_000)
    total_polls = len(state["log"])
    print(f"\nOK: one connection survived {len(RELEASES)} live updates "
          f"({total_polls} polls, request counter never reset).")


if __name__ == "__main__":
    main()
