#!/usr/bin/env python3
"""Per-connection FTP sessions (whole processes) survive a live update.

vsftpd forks one process per connection; at update time those session
processes hold the paper's hardest state: in-kernel connection fds plus
per-process session structures.  This example logs three users in,
transfers a file, live-updates to a release whose session structure has a
*new field*, and shows every session continuing — still authenticated,
byte counters intact — inside freshly recreated v2 processes.

Run:  python examples/ftp_sessions_survive.py
"""

from repro.kernel import Kernel, sim_function
from repro.mcr.ctl import McrCtl
from repro.runtime.instrument import BuildConfig
from repro.runtime.libmcr import MCRSession
from repro.runtime.program import load_program
from repro.servers import vsftpd
from repro.servers.common import PORT_VSFTPD, connect_with_retry, recv_line

USERS = ("alice", "bob", "carol")
gate = {"go": False}
pre = {user: [] for user in USERS}
post = {user: [] for user in USERS}


@sim_function
def ftp_user(sys, user):
    fd = yield from connect_with_retry(sys, PORT_VSFTPD)
    yield from recv_line(sys, fd)  # banner
    for command in (f"USER {user}", "PASS pw", "RETR /pub/readme.txt"):
        yield from sys.send(fd, (command + "\n").encode())
        line = yield from recv_line(sys, fd)
        pre[user].append(line.decode().strip()[:40])
    while not gate["go"]:
        yield from sys.nanosleep(10_000_000)
    # After the update: same socket, same session, new server version.
    for command in ("STAT", "RETR /pub/readme.txt", "STAT"):
        yield from sys.send(fd, (command + "\n").encode())
        line = yield from recv_line(sys, fd)
        post[user].append(line.decode().strip()[:60])
    yield from sys.send(fd, b"QUIT\n")
    yield from sys.close(fd)


def main() -> None:
    kernel = Kernel()
    vsftpd.setup_world(kernel)
    program = vsftpd.make_program(1)
    session = MCRSession(kernel, program, BuildConfig.full())
    load_program(kernel, program, build=BuildConfig.full(), session=session)

    for user in USERS:
        kernel.spawn_process(ftp_user, args=(user,), name=f"ftp-{user}")
    kernel.run(max_steps=900_000, until=lambda: all(len(v) == 3 for v in pre.values()))
    print("== sessions established under v1 ==")
    for user in USERS:
        print(f"  {user}: {pre[user]}")

    tree = session.root_process.tree()
    print(f"\nprocess tree before update: "
          f"{[(p.name, p.pid) for p in tree]}")

    ctl = McrCtl(kernel, session)
    result = ctl.live_update(vsftpd.make_program(3))  # v3 grows the session
    if not result.committed:
        raise SystemExit(f"update failed: {result.error}")
    print(f"\nlive update committed in {result.total_ms():.2f} ms "
          f"(sessions recreated by the post-startup reinit handler)")
    print(f"process tree after update:  "
          f"{[(p.name, p.pid) for p in result.new_root.tree()]}")

    gate["go"] = True
    kernel.run(max_steps=900_000, until=lambda: all(len(v) == 3 for v in post.values()))
    print("\n== same connections against v3 ==")
    for user in USERS:
        print(f"  {user}: {post[user]}")
        assert f"user={user}" in post[user][0]
        assert "sent=22" in post[user][0]   # v1's byte counter survived
        assert post[user][2].endswith("v3")
        assert "sent=44" in post[user][2]   # and keeps counting under v3
    print("\nOK: all three forked sessions survived the update.")


if __name__ == "__main__":
    main()
